"""Shared emulator infrastructure.

:class:`BytecodeAssembler` turns symbolic macro programs into the byte
streams the IFU decodes; :func:`build_machine` assembles an emulator's
microcode, loads the decode table into the IFU, initializes the task-0
registers (the console's job on the real machine), and returns an
:class:`EmulatorContext` ready to run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..asm.assembler import Assembler
from ..config import MachineConfig, PRODUCTION
from ..core.processor import Processor
from ..errors import EmulatorError
from ..ifu.decoder import DecodeTable, OperandKind
from ..types import word


class BytecodeAssembler:
    """Assembles symbolic byte-code against a :class:`DecodeTable`.

    Operands may be integers or label strings; labels resolve to byte
    addresses and are only legal in WORD operands (absolute targets).
    """

    def __init__(self, table: DecodeTable) -> None:
        self.table = table
        self._bytes: List[Union[int, Tuple[str, str]]] = []  # int or (label, "hi"/"lo")
        self._labels: Dict[str, int] = {}

    def label(self, name: str) -> None:
        if name in self._labels:
            raise EmulatorError(f"byte-code label {name!r} defined twice")
        self._labels[name] = len(self._bytes)

    @property
    def here(self) -> int:
        """Current byte address."""
        return len(self._bytes)

    def op(self, name: str, *operands: Union[int, str]) -> None:
        """Emit one macroinstruction."""
        opcode = self.table.opcode(name)
        entry = self.table.entry(opcode)
        kind = entry.operands
        self._bytes.append(opcode)
        expected = 0 if kind is OperandKind.NONE else (2 if kind is OperandKind.PAIR else 1)
        if kind is OperandKind.WORD:
            expected = 1
        if len(operands) != expected:
            raise EmulatorError(
                f"{name} takes {expected} operand(s) ({kind.value}), got {len(operands)}"
            )
        if kind is OperandKind.NONE:
            return
        if kind is OperandKind.WORD:
            value = operands[0]
            if isinstance(value, str):
                self._bytes.append((value, "hi"))
                self._bytes.append((value, "lo"))
            else:
                self._bytes.append((value >> 8) & 0xFF)
                self._bytes.append(value & 0xFF)
            return
        for value in operands:
            if isinstance(value, str):
                raise EmulatorError(f"{name}: labels are only legal in WORD operands")
            if not -128 <= value <= 255:
                raise EmulatorError(f"{name}: operand {value} does not fit in a byte")
            self._bytes.append(value & 0xFF)

    def assemble(self) -> List[int]:
        """Resolve labels; returns the byte stream."""
        out: List[int] = []
        for item in self._bytes:
            if isinstance(item, tuple):
                name, half = item
                if name not in self._labels:
                    raise EmulatorError(f"undefined byte-code label {name!r}")
                address = self._labels[name]
                out.append((address >> 8) & 0xFF if half == "hi" else address & 0xFF)
            else:
                out.append(item)
        return out

    def address_of(self, name: str) -> int:
        return self._labels[name]

    @staticmethod
    def pack_words(stream: Sequence[int]) -> List[int]:
        """Pack a byte stream into big-endian 16-bit words."""
        padded = list(stream) + [0] * (len(stream) % 2)
        return [word((padded[i] << 8) | padded[i + 1]) for i in range(0, len(padded), 2)]


@dataclass
class EmulatorContext:
    """A booted emulator: the machine plus its layout conventions."""

    cpu: Processor
    table: DecodeTable
    isa_name: str
    code_va: int
    init: Callable[["EmulatorContext"], None]

    def load_program(self, stream: Sequence[int], entry_byte: int = 0) -> None:
        """Load a byte stream at the code origin and point the IFU at it."""
        words = BytecodeAssembler.pack_words(stream)
        self.cpu.memory.storage.load(self.code_va, words)
        self.init(self)
        self.cpu.ifu.start(entry_byte)

    def run(self, max_cycles: int = 2_000_000) -> int:
        """Run until the HALT byte code; returns cycles used."""
        return self.cpu.run(max_cycles)

    @property
    def halted(self) -> bool:
        return self.cpu.halted

    def memory_word(self, va: int) -> int:
        return self.cpu.memory.debug_read(va)

    def set_memory_word(self, va: int, value: int) -> None:
        self.cpu.memory.debug_write(va, value)


def build_machine(
    isa_name: str,
    table: DecodeTable,
    emit_microcode: Callable[[Assembler], None],
    init: Callable[[EmulatorContext], None],
    code_va: int,
    config: MachineConfig = PRODUCTION,
    extra_microcode: Sequence[Callable[[Assembler], None]] = (),
    mapped_pages: int = 1024,
) -> EmulatorContext:
    """Assemble, load, and initialize an emulator machine.

    *emit_microcode* writes the emulator's handlers; *init* performs the
    console-style register setup (base registers, MEMBASE, RM contents);
    *extra_microcode* adds device tasks' code to the same control store.
    """
    asm = Assembler(config)
    asm.label(f"{isa_name}.boot")
    asm.emit(nextmacro=True)
    emit_microcode(asm)
    for extra in extra_microcode:
        extra(asm)
    image = asm.assemble()

    cpu = Processor(config)
    cpu.load_image(image)
    cpu.memory.identity_map(mapped_pages)

    dispatch = {label: image.address_of(label) for label in table.dispatch_labels()}
    cpu.ifu.load_table(table, dispatch)
    cpu.boot(image.address_of(f"{isa_name}.boot"))
    return EmulatorContext(
        cpu=cpu, table=table, isa_name=isa_name, code_va=code_va, init=init
    )
