"""A small procedural language compiled to Mesa byte codes.

Section 3: "the Dorado is optimized for the execution of languages that
are compiled into a stream of byte codes ... Such byte code compilers
exist for Mesa, Interlisp and Smalltalk."  This module is a miniature of
the Mesa side of that toolchain: a recursive-descent compiler from a
C/Mesa-flavoured language onto the byte codes of
:mod:`repro.emulators.mesa`, so workloads can be written as programs
instead of hand-threaded opcode lists.

The language::

    proc fib(n) {
        if n < 2 { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    proc main() {
        trace(fib(12));
    }

* ``proc name(args) { ... }`` — functions; every call is a real
  FC/ENTER/RET frame transfer.  ``main`` is the entry and ends in HALT.
* ``var x = expr;`` declares a frame local (at most 14 per function,
  the frame size the emulator allocates).
* statements: assignment, ``while cond { }``, ``if cond { } else { }``,
  ``return expr;``, expression statements, and the builtins
  ``trace(e)`` (to the console trace buffer) and ``mem[e] = e`` /
  ``mem[e]`` for raw memory access (AL/AS).
* expressions: ``+ - * / %`` (the multiply and divide run the hardware
  MULSTEP/DIVSTEP microcode), comparisons ``< > == !=``, unary ``-``
  and ``!``, integer literals, calls.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import EmulatorError
from .isa import BytecodeAssembler, EmulatorContext
from .mesa import FRAME_SIZE, build_mesa_machine

MAX_LOCALS = FRAME_SIZE - 2

_TOKEN = re.compile(
    r"\s*(?:(?P<num>0x[0-9a-fA-F]+|\d+)|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>==|!=|<=|>=|[-+*/%<>=!;,(){}\[\]]))"
)
_KEYWORDS = {"proc", "var", "while", "if", "else", "return", "trace", "mem"}


class CompileError(EmulatorError):
    """Source program rejected."""


@dataclass
class _Fn:
    name: str
    params: List[str]
    body: list


class _Tokenizer:
    def __init__(self, source: str) -> None:
        self.tokens: List[Tuple[str, str]] = []
        position = 0
        source = re.sub(r"#[^\n]*", "", source)  # comments
        while position < len(source):
            match = _TOKEN.match(source, position)
            if not match or match.end() == position:
                if source[position:].strip():
                    raise CompileError(f"bad character at {source[position:position+10]!r}")
                break
            position = match.end()
            if match.group("num"):
                self.tokens.append(("num", match.group("num")))
            elif match.group("name"):
                kind = "kw" if match.group("name") in _KEYWORDS else "name"
                self.tokens.append((kind, match.group("name")))
            else:
                self.tokens.append(("op", match.group("op")))
        self.index = 0

    def peek(self) -> Tuple[str, str]:
        if self.index >= len(self.tokens):
            return ("eof", "")
        return self.tokens[self.index]

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        self.index += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        got_kind, got = self.next()
        if got_kind != kind or (value is not None and got != value):
            raise CompileError(f"expected {value or kind}, got {got!r}")
        return got

    def accept(self, kind: str, value: str) -> bool:
        if self.peek() == (kind, value):
            self.index += 1
            return True
        return False


# --- parsing to a tiny AST (tuples) -------------------------------------------

def _parse_program(tz: _Tokenizer) -> Dict[str, _Fn]:
    functions: Dict[str, _Fn] = {}
    while tz.peek()[0] != "eof":
        tz.expect("kw", "proc")
        name = tz.expect("name")
        tz.expect("op", "(")
        params = []
        while not tz.accept("op", ")"):
            if params:
                tz.expect("op", ",")
            params.append(tz.expect("name"))
        body = _parse_block(tz)
        if name in functions:
            raise CompileError(f"proc {name!r} defined twice")
        functions[name] = _Fn(name, params, body)
    if "main" not in functions:
        raise CompileError("no proc main()")
    if functions["main"].params:
        raise CompileError("main takes no parameters")
    return functions


def _parse_block(tz: _Tokenizer) -> list:
    tz.expect("op", "{")
    statements = []
    while not tz.accept("op", "}"):
        statements.append(_parse_statement(tz))
    return statements


def _parse_statement(tz: _Tokenizer):
    kind, value = tz.peek()
    if (kind, value) == ("kw", "var"):
        tz.next()
        name = tz.expect("name")
        init = None
        if tz.accept("op", "="):
            init = _parse_expression(tz)
        tz.expect("op", ";")
        return ("var", name, init)
    if (kind, value) == ("kw", "while"):
        tz.next()
        condition = _parse_expression(tz)
        return ("while", condition, _parse_block(tz))
    if (kind, value) == ("kw", "if"):
        tz.next()
        condition = _parse_expression(tz)
        then_block = _parse_block(tz)
        else_block = _parse_block(tz) if tz.accept("kw", "else") else []
        return ("if", condition, then_block, else_block)
    if (kind, value) == ("kw", "return"):
        tz.next()
        expr = None if tz.peek() == ("op", ";") else _parse_expression(tz)
        tz.expect("op", ";")
        return ("return", expr)
    if (kind, value) == ("kw", "trace"):
        tz.next()
        tz.expect("op", "(")
        expr = _parse_expression(tz)
        tz.expect("op", ")")
        tz.expect("op", ";")
        return ("trace", expr)
    if (kind, value) == ("kw", "mem"):
        tz.next()
        tz.expect("op", "[")
        address = _parse_expression(tz)
        tz.expect("op", "]")
        tz.expect("op", "=")
        rhs = _parse_expression(tz)
        tz.expect("op", ";")
        return ("memstore", address, rhs)
    if kind == "name":
        # assignment or expression statement
        save = tz.index
        name = tz.next()[1]
        if tz.accept("op", "="):
            rhs = _parse_expression(tz)
            tz.expect("op", ";")
            return ("assign", name, rhs)
        tz.index = save
    expr = _parse_expression(tz)
    tz.expect("op", ";")
    return ("expr", expr)


def _parse_expression(tz: _Tokenizer):
    left = _parse_additive(tz)
    kind, value = tz.peek()
    if (kind, value) in [("op", o) for o in ("<", ">", "==", "!=")]:
        tz.next()
        right = _parse_additive(tz)
        return ("cmp", value, left, right)
    return left


def _parse_additive(tz: _Tokenizer):
    left = _parse_term(tz)
    while tz.peek() in (("op", "+"), ("op", "-")):
        op = tz.next()[1]
        left = ("bin", op, left, _parse_term(tz))
    return left


def _parse_term(tz: _Tokenizer):
    left = _parse_factor(tz)
    while tz.peek() in (("op", "*"), ("op", "/"), ("op", "%")):
        op = tz.next()[1]
        left = ("bin", op, left, _parse_factor(tz))
    return left


def _parse_factor(tz: _Tokenizer):
    kind, value = tz.next()
    if kind == "num":
        return ("lit", int(value, 0))
    if (kind, value) == ("op", "-"):
        return ("neg", _parse_factor(tz))
    if (kind, value) == ("op", "!"):
        return ("not", _parse_factor(tz))
    if (kind, value) == ("op", "("):
        expr = _parse_expression(tz)
        tz.expect("op", ")")
        return expr
    if (kind, value) == ("kw", "mem"):
        tz.expect("op", "[")
        address = _parse_expression(tz)
        tz.expect("op", "]")
        return ("memload", address)
    if kind == "name":
        if tz.accept("op", "("):
            args = []
            while not tz.accept("op", ")"):
                if args:
                    tz.expect("op", ",")
                args.append(_parse_expression(tz))
            return ("call", value, args)
        return ("var", value)
    raise CompileError(f"unexpected token {value!r}")


# --- code generation -----------------------------------------------------------

_BINOPS = {"+": "ADD", "-": "SUB", "*": "MUL", "/": "DIV", "%": "MOD"}


class _FnCompiler:
    def __init__(self, fn: _Fn, functions: Dict[str, _Fn], out: BytecodeAssembler) -> None:
        self.fn = fn
        self.functions = functions
        self.out = out
        self.locals: Dict[str, int] = {}
        self.label_count = 0
        for param in fn.params:
            self._declare(param)

    def _declare(self, name: str) -> int:
        if name in self.locals:
            raise CompileError(f"{self.fn.name}: {name!r} declared twice")
        if len(self.locals) >= MAX_LOCALS:
            raise CompileError(f"{self.fn.name}: more than {MAX_LOCALS} locals")
        self.locals[name] = len(self.locals)
        return self.locals[name]

    def _slot(self, name: str) -> int:
        try:
            return self.locals[name]
        except KeyError:
            raise CompileError(f"{self.fn.name}: undeclared variable {name!r}") from None

    def _label(self, hint: str) -> str:
        self.label_count += 1
        return f"{self.fn.name}.{hint}{self.label_count}"

    def emit_function(self) -> None:
        out = self.out
        out.label(self.fn.name)
        if self.fn.params:
            out.op("ENTER", len(self.fn.params))
        else:
            out.op("ENTER0")
        self._block(self.fn.body)
        # Implicit return (value 0) / halt for main.
        if self.fn.name == "main":
            out.op("HALT")
        else:
            out.op("LIT", 0)
            out.op("RET")

    def _block(self, statements: list) -> None:
        for statement in statements:
            self._statement(statement)

    def _statement(self, statement) -> None:
        out = self.out
        kind = statement[0]
        if kind == "var":
            _, name, init = statement
            slot = self._declare(name)
            if init is not None:
                self._expression(init)
                out.op("SL", slot)
        elif kind == "assign":
            _, name, rhs = statement
            self._expression(rhs)
            out.op("SL", self._slot(name))
        elif kind == "while":
            _, condition, body = statement
            top, end = self._label("while"), self._label("endwhile")
            out.label(top)
            self._expression(condition)
            out.op("JZ", end)
            self._block(body)
            out.op("JMP", top)
            out.label(end)
        elif kind == "if":
            _, condition, then_block, else_block = statement
            other, end = self._label("else"), self._label("endif")
            self._expression(condition)
            out.op("JZ", other)
            self._block(then_block)
            out.op("JMP", end)
            out.label(other)
            self._block(else_block)
            out.label(end)
        elif kind == "return":
            _, expr = statement
            if self.fn.name == "main":
                raise CompileError("main cannot return; use trace()")
            if expr is None:
                out.op("LIT", 0)
            else:
                self._expression(expr)
            out.op("RET")
        elif kind == "trace":
            self._expression(statement[1])
            out.op("TRACEB")
        elif kind == "memstore":
            _, address, rhs = statement
            out.op("LIT", 0)  # AL/AS take (base, index): base 0, index = addr
            self._expression(address)
            self._expression(rhs)
            out.op("AS")
        elif kind == "expr":
            self._expression(statement[1])
            out.op("DROP")
        else:
            raise CompileError(f"unknown statement {kind!r}")

    def _expression(self, expr) -> None:
        out = self.out
        kind = expr[0]
        if kind == "lit":
            value = expr[1] & 0xFFFF
            if value <= 0xFF:
                out.op("LIT", value)
            else:
                out.op("LITW", value)
        elif kind == "var":
            out.op("LL", self._slot(expr[1]))
        elif kind == "neg":
            self._expression(expr[1])
            out.op("NEG")
        elif kind == "not":
            self._expression(expr[1])
            out.op("LIT", 0)
            out.op("EQ")
        elif kind == "bin":
            _, op, left, right = expr
            self._expression(left)
            self._expression(right)
            out.op(_BINOPS[op])
        elif kind == "cmp":
            _, op, left, right = expr
            if op == ">":
                self._expression(right)
                self._expression(left)
                out.op("LT")
            elif op == "<":
                self._expression(left)
                self._expression(right)
                out.op("LT")
            else:
                self._expression(left)
                self._expression(right)
                out.op("EQ")
                if op == "!=":
                    out.op("LIT", 0)
                    out.op("EQ")
        elif kind == "memload":
            out.op("LIT", 0)
            self._expression(expr[1])
            out.op("AL")
        elif kind == "call":
            _, name, args = expr
            target = self.functions.get(name)
            if target is None:
                raise CompileError(f"call to unknown proc {name!r}")
            if len(args) != len(target.params):
                raise CompileError(
                    f"{name} takes {len(target.params)} args, got {len(args)}"
                )
            for arg in args:
                self._expression(arg)
            out.op("FC", name)
        else:
            raise CompileError(f"unknown expression {kind!r}")


def compile_source(source: str, out: BytecodeAssembler) -> None:
    """Compile *source* into *out*; ``main`` is emitted first (entry 0)."""
    functions = _parse_program(_Tokenizer(source))
    ordered = ["main"] + [n for n in functions if n != "main"]
    for name in ordered:
        _FnCompiler(functions[name], functions, out).emit_function()


def run_source(source: str, max_cycles: int = 5_000_000) -> EmulatorContext:
    """Compile, load, and run a program on a fresh Mesa machine.

    The traced values are in ``ctx.cpu.console.trace``.
    """
    ctx = build_mesa_machine()
    out = BytecodeAssembler(ctx.table)
    compile_source(source, out)
    ctx.load_program(out.assemble())
    ctx.run(max_cycles)
    if not ctx.halted:
        raise EmulatorError("compiled program did not halt")
    return ctx
