"""The Interlisp-style emulator (section 7).

"Lisp deals with 32 bit items and keeps its stack in memory, so two
loads and two stores are done in a basic data transfer operation ...
Note that Lisp does runtime checking of parameters ... Function calls
take ... about 200 [microinstructions] for Lisp."

Every Lisp item is two 16-bit words -- a tag and a value -- and the
evaluation stack lives in main memory, so even a literal push is two
Stores and a variable load is two Fetches plus two Stores.  CAR/CDR/CONS
check tags at run time and trap on type errors.  The call discipline is
Interlisp-style shallow binding with save/restore: CALLL pushes a return
frame, each BIND saves the symbol's old value cell on the stack before
installing the argument, and RETL unwinds the frame restoring every
binding -- which is where the paper's ~200-microinstruction calls come
from (we measure ~100-150 for 2-3 arguments; see EXPERIMENTS.md).

Tags: 0 = integer, 1 = pair, 2 = symbol, 3 = NIL, 4 = code, 5 = return
frame, 6 = saved binding.
"""

from __future__ import annotations

from ..asm.assembler import Assembler
from ..config import MachineConfig, PRODUCTION
from ..core.functions import FF
from ..ifu.decoder import DecodeEntry, DecodeTable, OperandKind
from .isa import EmulatorContext, build_machine

# --- memory layout (word addresses) -------------------------------------
CODE_VA = 0x0000
SYMBOLS_VA = 0x2000   #: 4 words per symbol: value tag/val, function tag/val
STACK_VA = 0x4000     #: the in-memory evaluation (value) stack, grows up
STACK_LIMIT = 0x57F0
CONTROL_VA = 0x5800   #: return frames and saved bindings, grows up
CONTROL_LIMIT = 0x5FF0
HEAP_VA = 0x6000      #: cons cells: car tag/val, cdr tag/val

# --- tags -------------------------------------------------------------------
TAG_INT = 0
TAG_PAIR = 1
TAG_SYM = 2
TAG_NIL = 3
TAG_CODE = 4
TAG_RETF = 5
TAG_SAVE = 6

# --- task-0 RM register allocation ---------------------------------------------
REG_SP = 0    #: evaluation stack pointer (VA)
REG_HP = 1    #: heap allocation pointer (VA)
REG_SYB = 2   #: symbol table base (VA)
REG_SLIM = 3  #: stack limit
REG_TAG = 4   #: item tag
REG_VAL = 5   #: item value
REG_CELL = 6  #: scratch cell pointer
REG_RT = 7    #: result/argument tag (held across pops)
REG_RV = 8    #: result/argument value
REG_CP = 9    #: control stack pointer (frames + saved bindings)
REG_CLIM = 10  #: control stack limit


def symbol_operand(index: int) -> int:
    """The byte-code operand addressing symbol *index* (4-word stride)."""
    return index * 4


def build_decode_table() -> DecodeTable:
    table = DecodeTable("lisp")
    B, W, N = OperandKind.BYTE, OperandKind.WORD, OperandKind.NONE
    ops = [
        (0x01, "LIN", "lsp.op.lin", W),     # push integer literal
        (0x02, "NILP", "lsp.op.nilp", N),   # push NIL
        (0x03, "SYMP", "lsp.op.symp", B),   # push a symbol item
        (0x10, "LLV", "lsp.op.llv", B),     # push symbol value (operand = 4*sym)
        (0x11, "SLV", "lsp.op.slv", B),     # pop into symbol value
        (0x20, "CAR", "lsp.op.car", N),
        (0x21, "CDR", "lsp.op.cdr", N),
        (0x22, "CONS", "lsp.op.cons", N),
        (0x23, "ADDL", "lsp.op.addl", N),
        (0x24, "SUBL", "lsp.op.subl", N),
        (0x25, "RPLACA", "lsp.op.rplaca", N),
        (0x26, "RPLACD", "lsp.op.rplacd", N),
        (0x27, "ATOM", "lsp.op.atom", N),
        (0x30, "JMPL", "lsp.op.jmpl", W),
        (0x31, "JNIL", "lsp.op.jnil", W),   # pop; jump if NIL
        (0x32, "JZL", "lsp.op.jzl", W),     # pop int; jump if zero
        (0x50, "CALLL", "lsp.op.calll", B),  # call via symbol function cell
        (0x51, "BIND", "lsp.op.bind", B),    # pop arg into symbol, saving old
        (0x52, "RETL", "lsp.op.retl", N),    # pop result, unwind bindings
        (0x60, "TRACEL", "lsp.op.tracel", N),  # pop; value word to the trace
        (0x61, "DROPL", "lsp.op.dropl", N),    # pop and discard
        (0xFF, "HALTL", "lsp.op.halt", N),
    ]
    for opcode, name, dispatch, kind in ops:
        table.define(opcode, DecodeEntry(name, dispatch, kind))
    return table


def emit_microcode(asm: Assembler) -> None:
    asm.registers(
        {
            "lsp.sp": REG_SP, "lsp.hp": REG_HP, "lsp.syb": REG_SYB,
            "lsp.slim": REG_SLIM, "lsp.tag": REG_TAG, "lsp.val": REG_VAL,
            "lsp.cell": REG_CELL, "lsp.rt": REG_RT, "lsp.rv": REG_RV,
            "lsp.cp": REG_CP, "lsp.clim": REG_CLIM,
        }
    )

    # --- microsubroutines (task-specific LINK, section 6.2.3) -------------
    # pop: take the top item off the memory stack into (tag, val).
    asm.label("lsp.pop")
    asm.emit(r="lsp.sp", a="RM", b=2, alu="SUB", load="RM")
    asm.emit(r="lsp.sp", a="RM", fetch=True)
    asm.emit(r="lsp.sp", a="RM", alu="INC", load="T")
    asm.emit(r="lsp.tag", a="MD", alu="A", load="RM")
    asm.emit(a="T", fetch=True)
    asm.emit(r="lsp.val", a="MD", alu="A", load="RM", ret=True)

    # push: put (tag, val) onto the memory stack.
    asm.label("lsp.push")
    asm.emit(r="lsp.sp", b="RM", alu="B", load="T")
    asm.emit(r="lsp.tag", b="RM", a="T", store=True, alu="INC", load="T")
    asm.emit(r="lsp.val", b="RM", a="T", store=True, alu="INC", load="T")
    asm.emit(r="lsp.sp", b="T", alu="B", load="RM", ret=True)

    # cpop/cpush: the same shapes against the control stack, which keeps
    # frames and bindings out of the value stack.
    asm.label("lsp.cpop")
    asm.emit(r="lsp.cp", a="RM", b=2, alu="SUB", load="RM")
    asm.emit(r="lsp.cp", a="RM", fetch=True)
    asm.emit(r="lsp.cp", a="RM", alu="INC", load="T")
    asm.emit(r="lsp.tag", a="MD", alu="A", load="RM")
    asm.emit(a="T", fetch=True)
    asm.emit(r="lsp.val", a="MD", alu="A", load="RM", ret=True)

    asm.label("lsp.cpush")
    asm.emit(r="lsp.cp", b="RM", alu="B", load="T")
    asm.emit(r="lsp.tag", b="RM", a="T", store=True, alu="INC", load="T")
    asm.emit(r="lsp.val", b="RM", a="T", store=True, alu="INC", load="T")
    asm.emit(r="lsp.cp", b="T", alu="B", load="RM", ret=True)

    # --- literals: a push is two Stores (the 32-bit-item tax) ---------------
    asm.label("lsp.op.lin")
    asm.emit(r="lsp.sp", a="RM", b=TAG_INT, store=True, alu="INC", load="RM")
    asm.emit(r="lsp.sp", a="RM", b="IFUDATA", store=True, alu="INC", load="RM",
             nextmacro=True)

    asm.label("lsp.op.nilp")
    asm.emit(r="lsp.sp", a="RM", b=TAG_NIL, store=True, alu="INC", load="RM")
    asm.emit(r="lsp.sp", a="RM", b=0, store=True, alu="INC", load="RM",
             nextmacro=True)

    asm.label("lsp.op.symp")
    asm.emit(r="lsp.sp", a="RM", b=TAG_SYM, store=True, alu="INC", load="RM")
    asm.emit(r="lsp.sp", a="RM", b="IFUDATA", store=True, alu="INC", load="RM",
             nextmacro=True)

    # --- variable access: "two loads and two stores ... in a basic data
    # transfer operation" ----------------------------------------------------
    asm.label("lsp.op.llv")
    asm.emit(r="lsp.syb", a="RM", b="IFUDATA", alu="ADD", load="T")
    asm.emit(a="T", fetch=True)                      # value tag
    asm.emit(a="T", alu="INC", load="T")
    asm.emit(r="lsp.sp", a="RM", b="MD", store=True, alu="INC", load="RM")
    asm.emit(a="T", fetch=True)                      # value word
    asm.emit(r="lsp.sp", a="RM", b="MD", store=True, alu="INC", load="RM",
             nextmacro=True)

    asm.label("lsp.op.slv")
    asm.emit(r="lsp.syb", a="RM", b="IFUDATA", alu="ADD", load="T")
    asm.emit(r="lsp.cell", b="T", alu="B", load="RM")
    asm.emit(call="lsp.pop")
    asm.emit(r="lsp.cell", b="RM", alu="B", load="T")
    asm.emit(r="lsp.tag", b="RM", a="T", store=True, alu="INC", load="T")
    asm.emit(r="lsp.val", b="RM", a="T", store=True, nextmacro=True)

    # --- list primitives, with runtime type checks -----------------------------
    for name, offset in [("car", 0), ("cdr", 2)]:
        asm.label(f"lsp.op.{name}")
        asm.emit(call="lsp.pop")
        asm.emit(r="lsp.tag", a="RM", b=TAG_PAIR, alu="XOR",
                 branch=("NONZERO", f"lsp.{name}_trap", f"lsp.{name}_ok"))
        asm.label(f"lsp.{name}_trap")
        asm.emit(ff=FF.BREAKPOINT, idle=True)
        asm.label(f"lsp.{name}_ok")
        if offset:
            asm.emit(r="lsp.val", a="RM", b=offset, alu="ADD", load="T")
        else:
            asm.emit(r="lsp.val", b="RM", alu="B", load="T")
        asm.emit(a="T", fetch=True)
        asm.emit(a="T", alu="INC", load="T")
        asm.emit(r="lsp.tag", a="MD", alu="A", load="RM")
        asm.emit(a="T", fetch=True)
        asm.emit(r="lsp.val", a="MD", alu="A", load="RM")
        asm.emit(call="lsp.push")
        asm.emit(nextmacro=True)

    # CONS: pop cdr then car, build a cell at HP, push the pair.
    asm.label("lsp.op.cons")
    asm.emit(call="lsp.pop")                                   # cdr
    asm.emit(r="lsp.hp", a="RM", b=2, alu="ADD", load="T")
    asm.emit(r="lsp.tag", b="RM", a="T", store=True, alu="INC", load="T")
    asm.emit(r="lsp.val", b="RM", a="T", store=True)
    asm.emit(call="lsp.pop")                                   # car
    asm.emit(r="lsp.hp", b="RM", alu="B", load="T")
    asm.emit(r="lsp.tag", b="RM", a="T", store=True, alu="INC", load="T")
    asm.emit(r="lsp.val", b="RM", a="T", store=True)
    asm.emit(r="lsp.tag", b=TAG_PAIR, alu="B", load="RM")      # result item
    asm.emit(r="lsp.hp", b="RM", alu="B", load="T")
    asm.emit(r="lsp.val", b="T", alu="B", load="RM")
    asm.emit(r="lsp.hp", a="RM", b=4, alu="ADD", load="RM")
    asm.emit(call="lsp.push")
    asm.emit(nextmacro=True)

    # Integer arithmetic with tag checks on both operands.
    for name, aluop in [("addl", "ADD"), ("subl", "SUB")]:
        asm.label(f"lsp.op.{name}")
        asm.emit(call="lsp.pop")                               # rhs
        asm.emit(r="lsp.tag", a="RM", alu="A",
                 branch=("NONZERO", f"lsp.{name}_trap", f"lsp.{name}_ok1"))
        asm.label(f"lsp.{name}_trap")
        asm.emit(ff=FF.BREAKPOINT, idle=True)
        asm.label(f"lsp.{name}_ok1")
        asm.emit(r="lsp.val", b="RM", alu="B", load="T")
        asm.emit(r="lsp.rv", b="T", alu="B", load="RM")        # stash rhs value
        asm.emit(call="lsp.pop")                               # lhs
        asm.emit(r="lsp.tag", a="RM", alu="A",
                 branch=("NONZERO", f"lsp.{name}_trap2", f"lsp.{name}_ok2"))
        asm.label(f"lsp.{name}_trap2")
        asm.emit(ff=FF.BREAKPOINT, idle=True)
        asm.label(f"lsp.{name}_ok2")
        asm.emit(r="lsp.rv", b="RM", alu="B", load="T")
        # lhs in val (A), rhs in T (B): ADD = A+B, SUB = A-B.
        asm.emit(r="lsp.val", a="RM", b="T", alu=aluop, load="RM")
        asm.emit(call="lsp.push")
        asm.emit(nextmacro=True)

    # RPLACA/RPLACD: pop the new value and the pair, store into the cell
    # (with the pair type check), push the pair back -- destructive list
    # surgery, tag-checked like everything in Lisp.
    for name, offset in [("rplaca", 0), ("rplacd", 2)]:
        asm.label(f"lsp.op.{name}")
        asm.emit(call="lsp.pop")                           # new value
        asm.emit(r="lsp.tag", b="RM", alu="B", load="T")
        asm.emit(r="lsp.rt", b="T", alu="B", load="RM")
        asm.emit(r="lsp.val", b="RM", alu="B", load="T")
        asm.emit(r="lsp.rv", b="T", alu="B", load="RM")
        asm.emit(call="lsp.pop")                           # the pair
        asm.emit(r="lsp.tag", a="RM", b=TAG_PAIR, alu="XOR",
                 branch=("NONZERO", f"lsp.{name}_trap", f"lsp.{name}_ok"))
        asm.label(f"lsp.{name}_trap")
        asm.emit(ff=FF.BREAKPOINT, idle=True)
        asm.label(f"lsp.{name}_ok")
        if offset:
            asm.emit(r="lsp.val", a="RM", b=offset, alu="ADD", load="T")
        else:
            asm.emit(r="lsp.val", b="RM", alu="B", load="T")
        asm.emit(r="lsp.rt", b="RM", a="T", store=True, alu="INC", load="T")
        asm.emit(r="lsp.rv", b="RM", a="T", store=True)
        asm.emit(call="lsp.push")                          # pair back on stack
        asm.emit(nextmacro=True)

    # ATOM: pop an item, push integer 1 if it is not a pair, else 0.
    asm.label("lsp.op.atom")
    asm.emit(call="lsp.pop")
    asm.emit(r="lsp.tag", a="RM", b=TAG_PAIR, alu="XOR",
             branch=("NONZERO", "lsp.atom_t", "lsp.atom_f"))
    asm.label("lsp.atom_t")
    asm.emit(r="lsp.val", b=1, alu="B", load="RM", goto="lsp.atom_push")
    asm.label("lsp.atom_f")
    asm.emit(r="lsp.val", b=0, alu="B", load="RM")
    asm.label("lsp.atom_push")
    asm.emit(r="lsp.tag", b=TAG_INT, alu="B", load="RM")
    asm.emit(call="lsp.push")
    asm.emit(nextmacro=True)

    # --- jumps ------------------------------------------------------------------
    asm.label("lsp.op.jmpl")
    asm.emit(a="IFUDATA", alu="A", ff=FF.IFU_JUMP)
    asm.emit(nextmacro=True)

    for name in ("jnil", "jzl"):
        asm.label(f"lsp.op.{name}")
        asm.emit(call="lsp.pop")
        if name == "jnil":
            asm.emit(r="lsp.tag", a="RM", b=TAG_NIL, alu="XOR",
                     branch=("ZERO", f"lsp.{name}_t", f"lsp.{name}_f"))
        else:
            asm.emit(r="lsp.val", a="RM", alu="A",
                     branch=("ZERO", f"lsp.{name}_t", f"lsp.{name}_f"))
        asm.label(f"lsp.{name}_t")
        asm.emit(a="IFUDATA", alu="A", ff=FF.IFU_JUMP)
        asm.emit(nextmacro=True)
        asm.label(f"lsp.{name}_f")
        asm.emit(nextmacro=True)

    # --- the call discipline -------------------------------------------------------
    # CALLL sym: fetch the function cell, type-check it, push the return
    # frame, check for stack overflow, and redirect the IFU.
    asm.label("lsp.op.calll")
    asm.emit(r="lsp.syb", a="RM", b="IFUDATA", alu="ADD", load="T")
    asm.emit(a="T", b=2, alu="ADD", load="T")        # -> function cell
    asm.emit(a="T", fetch=True)                       # fn tag
    asm.emit(a="T", alu="INC", load="T")
    asm.emit(r="lsp.tag", a="MD", alu="A", load="RM")
    asm.emit(a="T", fetch=True)                       # fn value (entry byte PC)
    asm.emit(r="lsp.tag", a="RM", b=TAG_CODE, alu="XOR",
             branch=("NONZERO", "lsp.call_trap", "lsp.call_ok"))
    asm.label("lsp.call_trap")
    asm.emit(ff=FF.BREAKPOINT, idle=True)
    asm.label("lsp.call_ok")
    asm.emit(r="lsp.cp", b="RM", alu="B", load="T")
    asm.emit(b=TAG_RETF, a="T", store=True, alu="INC", load="T")
    asm.emit(b="IFUPC", a="T", store=True, alu="INC", load="T")
    asm.emit(r="lsp.cp", b="T", alu="B", load="RM")
    asm.emit(r="lsp.clim", a="RM", b="T", alu="SUB",
             branch=("NEG", "lsp.ovf_trap", "lsp.call_go"))
    asm.label("lsp.ovf_trap")
    asm.emit(ff=FF.BREAKPOINT, idle=True)
    asm.label("lsp.call_go")
    asm.emit(a="MD", alu="A", ff=FF.IFU_JUMP)
    asm.emit(nextmacro=True)

    # BIND sym: pop the argument from the value stack, save the symbol's
    # old value (plus a SAVE marker) on the control stack, install the
    # argument in the value cell.
    asm.label("lsp.op.bind")
    asm.emit(r="lsp.syb", a="RM", b="IFUDATA", alu="ADD", load="T")
    asm.emit(r="lsp.cell", b="T", alu="B", load="RM")
    asm.emit(call="lsp.pop")                          # argument -> tag/val
    asm.emit(r="lsp.tag", b="RM", alu="B", load="T")
    asm.emit(r="lsp.rt", b="T", alu="B", load="RM")   # stash arg tag
    asm.emit(r="lsp.val", b="RM", alu="B", load="T")
    asm.emit(r="lsp.rv", b="T", alu="B", load="RM")   # stash arg value
    asm.emit(r="lsp.cell", b="RM", alu="B", load="T")
    asm.emit(a="T", fetch=True)                       # old tag
    asm.emit(a="T", alu="INC", load="T")
    asm.emit(r="lsp.tag", a="MD", alu="A", load="RM")
    asm.emit(a="T", fetch=True)                       # old value
    asm.emit(r="lsp.val", a="MD", alu="A", load="RM")
    asm.emit(call="lsp.cpush")                        # saved (oldtag, oldval)
    asm.emit(r="lsp.cp", b="RM", alu="B", load="T")   # then the SAVE marker
    asm.emit(b=TAG_SAVE, a="T", store=True, alu="INC", load="T")
    asm.emit(r="lsp.cell", b="RM", a="T", store=True, alu="INC", load="T")
    asm.emit(r="lsp.cp", b="T", alu="B", load="RM")
    asm.emit(r="lsp.cell", b="RM", alu="B", load="T")  # install the argument
    asm.emit(r="lsp.rt", b="RM", a="T", store=True, alu="INC", load="T")
    asm.emit(r="lsp.rv", b="RM", a="T", store=True, nextmacro=True)

    # RETL: unwind the control stack, restoring every saved binding,
    # until the return frame; the result stays put on the value stack.
    asm.label("lsp.op.retl")
    asm.emit(goto="lsp.unwind")
    asm.label("lsp.unwind")
    asm.emit(call="lsp.cpop")                         # frame entry
    asm.emit(r="lsp.tag", a="RM", b=TAG_RETF, alu="XOR",
             branch=("ZERO", "lsp.ret_found", "lsp.ret_save"))
    asm.label("lsp.ret_save")                         # restore one binding
    asm.emit(r="lsp.val", b="RM", alu="B", load="T")
    asm.emit(r="lsp.cell", b="T", alu="B", load="RM")
    asm.emit(call="lsp.cpop")                         # the saved old value
    asm.emit(r="lsp.cell", b="RM", alu="B", load="T")
    asm.emit(r="lsp.tag", b="RM", a="T", store=True, alu="INC", load="T")
    asm.emit(r="lsp.val", b="RM", a="T", store=True, goto="lsp.unwind")
    asm.label("lsp.ret_found")
    asm.emit(r="lsp.val", b="RM", alu="B", ff=FF.IFU_JUMP)  # resume caller
    asm.emit(nextmacro=True)

    asm.label("lsp.op.tracel")
    asm.emit(call="lsp.pop")
    asm.emit(r="lsp.val", b="RM", ff=FF.TRACE, nextmacro=True)

    asm.label("lsp.op.dropl")
    asm.emit(r="lsp.sp", a="RM", b=2, alu="SUB", load="RM", nextmacro=True)

    asm.label("lsp.op.halt")
    asm.emit(ff=FF.HALT, idle=True)


def _init(ctx: EmulatorContext) -> None:
    cpu = ctx.cpu
    cpu.regs.write_rbase(0, 0)
    cpu.regs.write_membase(0, 0)
    cpu.memory.translator.write_base_low(0, 0)
    cpu.regs.write_rm_absolute(REG_SP, STACK_VA)
    cpu.regs.write_rm_absolute(REG_HP, HEAP_VA)
    cpu.regs.write_rm_absolute(REG_SYB, SYMBOLS_VA)
    cpu.regs.write_rm_absolute(REG_SLIM, STACK_LIMIT)
    cpu.regs.write_rm_absolute(REG_CP, CONTROL_VA)
    cpu.regs.write_rm_absolute(REG_CLIM, CONTROL_LIMIT)


def define_function(ctx: EmulatorContext, symbol: int, entry_byte: int) -> None:
    """Install a code pointer in a symbol's function cell."""
    base = SYMBOLS_VA + 4 * symbol
    ctx.set_memory_word(base + 2, TAG_CODE)
    ctx.set_memory_word(base + 3, entry_byte)


def set_symbol_value(ctx: EmulatorContext, symbol: int, tag: int, value: int) -> None:
    base = SYMBOLS_VA + 4 * symbol
    ctx.set_memory_word(base, tag)
    ctx.set_memory_word(base + 1, value)


def symbol_value(ctx: EmulatorContext, symbol: int):
    base = SYMBOLS_VA + 4 * symbol
    return ctx.memory_word(base), ctx.memory_word(base + 1)


def stack_top(ctx: EmulatorContext):
    """(tag, value) of the item on top of the in-memory stack."""
    sp = ctx.cpu.regs.read_rm_absolute(REG_SP)
    return ctx.memory_word(sp - 2), ctx.memory_word(sp - 1)


def build_list(ctx: EmulatorContext, values) -> int:
    """Build a cons list of integers in the heap; returns the head cell VA.

    Host-side setup (the workload generator's job); advances the heap
    pointer so CONS keeps working afterwards.
    """
    hp = ctx.cpu.regs.read_rm_absolute(REG_HP)
    head_tag, head_val = TAG_NIL, 0
    for value in reversed(list(values)):
        cell = hp
        hp += 4
        ctx.set_memory_word(cell, TAG_INT)
        ctx.set_memory_word(cell + 1, value & 0xFFFF)
        ctx.set_memory_word(cell + 2, head_tag)
        ctx.set_memory_word(cell + 3, head_val)
        head_tag, head_val = TAG_PAIR, cell
    ctx.cpu.regs.write_rm_absolute(REG_HP, hp)
    return head_val if head_tag == TAG_PAIR else 0


def build_lisp_machine(
    config: MachineConfig = PRODUCTION, extra_microcode=()
) -> EmulatorContext:
    """A booted Dorado running the Lisp emulator."""
    return build_machine(
        "lsp",
        build_decode_table(),
        emit_microcode,
        _init,
        CODE_VA,
        config=config,
        extra_microcode=extra_microcode,
    )
