"""A miniature Interlisp compiler onto the Lisp byte codes.

The paper's Lisp numbers come from Deutsch's byte-compiled Interlisp
(reference [2]); this is a toy of the same species: S-expressions
compiled to the :mod:`repro.emulators.lisp` byte codes, with every
variable a deep-bound symbol and every call a CALLL/BIND/RETL frame.

Supported forms::

    (defun name (params...) body...)
    (setq sym expr)            ; also an expression (returns the value)
    (if test then [else])      ; only NIL is false, as in Lisp
    (progn e1 e2 ...)
    (trace expr)               ; value word to the console trace buffer
    (+ a b) (- a b)            ; 16-bit integer arithmetic, tag-checked
    (car e) (cdr e) (cons a b) (rplaca p v) (rplacd p v)
    (null e) (atom e) (zerop e) (eq a b)   ; predicates return 1 or NIL
    (f args...)                ; user function call
    numbers, nil, symbols

Top-level non-defun forms run in order; the last HALTL stops the
machine.  ``run_lisp`` compiles and executes one program.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple, Union

from ..errors import EmulatorError
from .isa import BytecodeAssembler, EmulatorContext
from .lisp import TAG_INT, build_lisp_machine, define_function, symbol_operand

Sexp = Union[int, str, list]


class LispCompileError(EmulatorError):
    """Source program rejected."""


# --- reader --------------------------------------------------------------

_TOKENS = re.compile(r"\(|\)|[^\s()]+")


def read_program(source: str) -> List[Sexp]:
    source = re.sub(r";[^\n]*", "", source)
    tokens = _TOKENS.findall(source)
    forms: List[Sexp] = []
    index = 0

    def read() -> Sexp:
        nonlocal index
        if index >= len(tokens):
            raise LispCompileError("unexpected end of input")
        token = tokens[index]
        index += 1
        if token == "(":
            items = []
            while True:
                if index >= len(tokens):
                    raise LispCompileError("unbalanced parentheses")
                if tokens[index] == ")":
                    index += 1
                    return items
                items.append(read())
        if token == ")":
            raise LispCompileError("unexpected )")
        if re.fullmatch(r"-?\d+|0x[0-9a-fA-F]+", token):
            return int(token, 0)
        return token.lower()

    while index < len(tokens):
        forms.append(read())
    return forms


# --- compiler --------------------------------------------------------------

class LispCompiler:
    """Compiles a program; symbols are assigned indices on first use."""

    def __init__(self, out: BytecodeAssembler) -> None:
        self.out = out
        self.symbols: Dict[str, int] = {}
        self.functions: Dict[str, Tuple[str, int]] = {}  # name -> (label, arity)
        self.label_count = 0

    def symbol_index(self, name: str) -> int:
        if name not in self.symbols:
            if len(self.symbols) >= 60:
                raise LispCompileError("more than 60 symbols")
            self.symbols[name] = len(self.symbols)
        return self.symbols[name]

    def _label(self, hint: str) -> str:
        self.label_count += 1
        return f"L{self.label_count}_{hint}"

    # Every compiled expression leaves exactly one item on the stack.

    def compile_program(self, forms: List[Sexp]) -> None:
        defuns = [f for f in forms if isinstance(f, list) and f and f[0] == "defun"]
        toplevel = [f for f in forms if not (isinstance(f, list) and f and f[0] == "defun")]
        for form in defuns:
            self._declare_defun(form)
        for form in toplevel:
            self.expr(form)
            self.out.op("DROPL")
        self.out.op("HALTL")
        for form in defuns:
            self._compile_defun(form)

    def _declare_defun(self, form: Sexp) -> None:
        if len(form) < 4 or not isinstance(form[1], str) or not isinstance(form[2], list):
            raise LispCompileError(f"malformed defun: {form!r}")
        name = form[1]
        if name in self.functions:
            raise LispCompileError(f"defun {name!r} twice")
        self.functions[name] = (self._label(f"fn_{name}"), len(form[2]))
        self.symbol_index(name)  # the function cell's symbol

    def _compile_defun(self, form: Sexp) -> None:
        name, params, body = form[1], form[2], form[3:]
        label, _ = self.functions[name]
        self.out.label(label)
        # Arguments were pushed left to right; BIND pops right to left.
        for param in reversed(params):
            if not isinstance(param, str):
                raise LispCompileError(f"bad parameter {param!r}")
            self.out.op("BIND", symbol_operand(self.symbol_index(param)))
        for statement in body[:-1]:
            self.expr(statement)
            self.out.op("DROPL")
        self.expr(body[-1])
        self.out.op("RETL")

    def expr(self, form: Sexp) -> None:
        out = self.out
        if isinstance(form, int):
            out.op("LIN", form & 0xFFFF)
            return
        if isinstance(form, str):
            if form == "nil":
                out.op("NILP")
                return
            out.op("LLV", symbol_operand(self.symbol_index(form)))
            return
        if not form:
            out.op("NILP")
            return
        head = form[0]
        if head == "quote":
            raise LispCompileError("quote of structure is not supported; build with cons")
        if head == "setq":
            _, name, value = form
            self.expr(value)
            index = self.symbol_index(name)
            out.op("SLV", symbol_operand(index))
            out.op("LLV", symbol_operand(index))  # setq yields the value
            return
        if head == "progn":
            if len(form) == 1:
                out.op("NILP")
                return
            for statement in form[1:-1]:
                self.expr(statement)
                out.op("DROPL")
            self.expr(form[-1])
            return
        if head == "if":
            if len(form) not in (3, 4):
                raise LispCompileError(f"malformed if: {form!r}")
            else_label, end_label = self._label("else"), self._label("endif")
            self.expr(form[1])
            out.op("JNIL", else_label)
            self.expr(form[2])
            out.op("JMPL", end_label)
            out.label(else_label)
            if len(form) == 4:
                self.expr(form[3])
            else:
                out.op("NILP")
            out.label(end_label)
            return
        if head == "trace":
            self.expr(form[1])
            out.op("TRACEL")
            out.op("NILP")  # keep the one-value invariant
            return
        simple = {"+": "ADDL", "-": "SUBL", "cons": "CONS",
                  "rplaca": "RPLACA", "rplacd": "RPLACD"}
        if head in simple:
            self._nargs(form, 2)
            self.expr(form[1])
            self.expr(form[2])
            out.op(simple[head])
            return
        if head in ("car", "cdr"):
            self._nargs(form, 1)
            self.expr(form[1])
            out.op(head.upper())
            return
        if head == "null":
            self._nargs(form, 1)
            true_label, end_label = self._label("nullt"), self._label("nullend")
            self.expr(form[1])
            out.op("JNIL", true_label)
            out.op("NILP")
            out.op("JMPL", end_label)
            out.label(true_label)
            out.op("LIN", 1)
            out.label(end_label)
            return
        if head == "atom":
            self._nargs(form, 1)
            false_label, end_label = self._label("atomf"), self._label("atomend")
            self.expr(form[1])
            out.op("ATOM")        # integer 1/0
            out.op("JZL", false_label)
            out.op("LIN", 1)
            out.op("JMPL", end_label)
            out.label(false_label)
            out.op("NILP")
            out.label(end_label)
            return
        if head == "zerop":
            self._nargs(form, 1)
            true_label, end_label = self._label("zt"), self._label("zend")
            self.expr(form[1])
            out.op("JZL", true_label)
            out.op("NILP")
            out.op("JMPL", end_label)
            out.label(true_label)
            out.op("LIN", 1)
            out.label(end_label)
            return
        if head == "eq":
            self._nargs(form, 2)
            true_label, end_label = self._label("eqt"), self._label("eqend")
            self.expr(form[1])
            self.expr(form[2])
            out.op("SUBL")
            out.op("JZL", true_label)
            out.op("NILP")
            out.op("JMPL", end_label)
            out.label(true_label)
            out.op("LIN", 1)
            out.label(end_label)
            return
        # User function call.
        if not isinstance(head, str) or head not in self.functions:
            raise LispCompileError(f"unknown form {head!r}")
        label, arity = self.functions[head]
        if len(form) - 1 != arity:
            raise LispCompileError(f"{head} takes {arity} args, got {len(form) - 1}")
        for argument in form[1:]:
            self.expr(argument)
        out.op("CALLL", symbol_operand(self.symbol_index(head)))
        return

    def _nargs(self, form: Sexp, n: int) -> None:
        if len(form) - 1 != n:
            raise LispCompileError(f"{form[0]} takes {n} args, got {len(form) - 1}")


def compile_lisp(source: str, out: BytecodeAssembler) -> LispCompiler:
    """Compile *source* into *out*; returns the compiler (symbol table)."""
    compiler = LispCompiler(out)
    compiler.compile_program(read_program(source))
    return compiler


def run_lisp(source: str, max_cycles: int = 10_000_000) -> EmulatorContext:
    """Compile, install function cells, and run on a fresh Lisp machine."""
    ctx = build_lisp_machine()
    out = BytecodeAssembler(ctx.table)
    compiler = compile_lisp(source, out)
    ctx.load_program(out.assemble())
    for name, (label, _) in compiler.functions.items():
        define_function(ctx, compiler.symbols[name], out.address_of(label))
    ctx.run(max_cycles)
    if not ctx.halted:
        raise EmulatorError("compiled Lisp program did not halt")
    return ctx
