"""I/O device controllers.

The Dorado's controllers are deliberately thin: "when the processor is
available to each device, complex device interfaces can be implemented
with relatively little dedicated hardware" (section 4).  A device model
here is the *hardware* half of a controller -- FIFOs, status registers,
the wakeup line, and (for high-bandwidth devices) a fast-I/O port; the
*microcode* half runs on the simulated processor under the device's
task.
"""

from .device import Device, LoopbackDevice
from .disk import DiskController, DiskGeometry, disk_microcode
from .display import DisplayController, display_fast_microcode
from .keyboard import KeyboardDevice, keyboard_microcode
from .network import NetworkController, network_microcode
from .timer import TimerDevice, timer_microcode

__all__ = [
    "Device",
    "DiskController",
    "DiskGeometry",
    "DisplayController",
    "KeyboardDevice",
    "LoopbackDevice",
    "NetworkController",
    "TimerDevice",
    "disk_microcode",
    "keyboard_microcode",
    "display_fast_microcode",
    "network_microcode",
    "timer_microcode",
]
