"""The display controller (sections 5.8, 6.2.1, 7).

"The Dorado supports raster scan displays which are refreshed from a
full bitmap in main storage."  The controller uses the **fast I/O
system**: its microcode starts one 16-word munch IOFetch per wakeup --
two microinstructions, so at the full 530 Mbit/s memory bandwidth (a
munch every 8-cycle storage cycle) the display consumes 25% of the
processor (section 6.2.1).  A second microcode variant implements the
"simpler design" the paper rejects, where the device must be notified
explicitly and the grain is three instructions (37.5%) -- experiment E5.

The monitor itself is modelled as a pixel-word consumer with an
underrun counter: if microcode cannot keep the FIFO fed, the screen
would glitch, and the counter says so.
"""

from __future__ import annotations

from typing import List

from ..asm.assembler import Assembler
from ..core.functions import FF
from ..errors import DeviceError
from ..types import MUNCH_WORDS, word
from .device import Device

REG_PTR = 0   #: bitmap munch pointer
REG_CNT = 1   #: munches remaining in the band
REG_ST = 2    #: status/notify code

#: Slow-I/O register offsets (the display uses both I/O systems,
#: per the paper's Figure 1 discussion: pixels over fast I/O, cursor
#: and control over the IODATA bus).
IOREG_STATUS = 0
IOREG_CURSOR_X = 1
IOREG_CURSOR_Y = 2

STATUS_DONE = 1
STATUS_NOTIFY = 2

DISPLAY_TASK = 15        #: highest priority: missed data glitches the screen
DISPLAY_IO_ADDRESS = 0x30


class DisplayController(Device):
    """A raster display refreshed over the fast I/O system."""

    def __init__(
        self,
        task: int = DISPLAY_TASK,
        io_address: int = DISPLAY_IO_ADDRESS,
        munch_interval_cycles: int = 8,
        fifo_munches: int = 4,
        explicit_notify: bool = False,
    ) -> None:
        super().__init__(
            "display", task, io_address, register_count=3, explicit_notify=explicit_notify
        )
        self.cursor_x = 0
        self.cursor_y = 0
        self.munch_interval_cycles = munch_interval_cycles
        self.fifo_capacity_words = fifo_munches * MUNCH_WORDS
        self.fifo: List[int] = []
        self.pixels_consumed = 0
        self.underruns = 0
        self.munches_outstanding = 0  #: requested from microcode, not yet delivered
        self.munches_to_request = 0
        self.active = False
        self.done = False
        self._timer = 0

    # --- snapshot protocol (DESIGN.md section 5.4) -------------------------

    def state_dict(self) -> dict:
        state = super().state_dict()
        state.update(
            cursor_x=self.cursor_x,
            cursor_y=self.cursor_y,
            fifo=list(self.fifo),
            pixels_consumed=self.pixels_consumed,
            underruns=self.underruns,
            munches_outstanding=self.munches_outstanding,
            munches_to_request=self.munches_to_request,
            active=self.active,
            done=self.done,
            timer=self._timer,
            beam_on=getattr(self, "_beam_on", False),
        )
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self.cursor_x = state["cursor_x"]
        self.cursor_y = state["cursor_y"]
        self.fifo = list(state["fifo"])
        self.pixels_consumed = state["pixels_consumed"]
        self.underruns = state["underruns"]
        self.munches_outstanding = state["munches_outstanding"]
        self.munches_to_request = state["munches_to_request"]
        self.active = bool(state["active"])
        self.done = bool(state["done"])
        self._timer = state["timer"]
        self._beam_on = bool(state["beam_on"])

    # --- host-side control -----------------------------------------------------

    def begin_band(self, machine, bitmap_va: int, munches: int, entry: str = None) -> None:
        """Refresh *munches* 16-word munches starting at *bitmap_va*.

        Sets up the display task's registers (the console's job) and
        starts pacing wakeups at the munch interval.
        """
        if entry is None:
            entry = "disp3.loop" if self.explicit_notify else "disp.loop"
        machine.regs.write_rbase(self.task, self.task)
        machine.regs.write_ioaddress(self.task, self.io_address)
        machine.regs.write_membase(self.task, 0)
        machine.regs.write_t(self.task, MUNCH_WORDS)  # the pointer stride
        bank = self.task * 16
        machine.regs.write_rm_absolute(bank + REG_PTR, bitmap_va)
        machine.regs.write_rm_absolute(bank + REG_CNT, munches)
        machine.regs.write_rm_absolute(bank + REG_ST, STATUS_NOTIFY)
        machine.pipe.write_tpc(self.task, machine.address_of(entry))
        self.fifo = []
        self.pixels_consumed = 0
        self.underruns = 0
        self.munches_outstanding = 0
        self.munches_to_request = munches
        self.active = True
        self.done = False
        self._beam_on = False  # the beam waits for a small prefill
        self._timer = 1  # first request on the next cycle

    # --- device clock --------------------------------------------------------------

    def poll(self, machine) -> None:
        if not self.active:
            return
        self._timer -= 1
        if self._timer <= 0:
            self._timer = self.munch_interval_cycles
            # The beam starts once the retrace prefill is in (two munches
            # or the whole band, whichever is smaller).
            if not self._beam_on:
                prefill = min(2 * MUNCH_WORDS, self.fifo_capacity_words)
                if len(self.fifo) >= prefill or self.munches_to_request == 0:
                    self._beam_on = True
            # The beam consumes a munch worth of pixels per interval.
            if self._beam_on:
                if len(self.fifo) >= MUNCH_WORDS:
                    del self.fifo[:MUNCH_WORDS]
                    self.pixels_consumed += MUNCH_WORDS
                elif self.munches_to_request == 0 and self.munches_outstanding == 0:
                    pass  # band finished, FIFO drained
                else:
                    self.underruns += 1
            # Ask microcode for the next munch.
            if self.munches_to_request > 0 and len(self.fifo) < self.fifo_capacity_words:
                self.munches_to_request -= 1
                self.munches_outstanding += 1
                self.request_service(1)
        # Band complete: every munch requested, delivered, and scanned.
        if (
            self.munches_to_request == 0
            and self.munches_outstanding == 0
            and not self.fifo
        ):
            self.active = False
            self.done = True

    def fast_deliver(self, address: int, words: List[int]) -> None:
        self.fifo.extend(word(w) for w in words)
        self.munches_outstanding -= 1

    # --- bus registers ------------------------------------------------------------------

    def read_register(self, offset: int) -> int:
        if offset == IOREG_STATUS:
            return 1 if self.done else 0
        if offset == IOREG_CURSOR_X:
            return self.cursor_x
        if offset == IOREG_CURSOR_Y:
            return self.cursor_y
        raise DeviceError(f"display: no readable register {offset}")

    def write_register(self, offset: int, value: int) -> None:
        if offset == IOREG_STATUS:
            if value == STATUS_NOTIFY:
                self.notify()
            elif value == STATUS_DONE:
                self.active = False
                self.done = True
                self.attention = True
            return
        if offset == IOREG_CURSOR_X:
            self.cursor_x = value
            return
        if offset == IOREG_CURSOR_Y:
            self.cursor_y = value
            return
        raise DeviceError(f"display: no writable register {offset}")


def display_fast_microcode(asm: Assembler) -> None:
    """Emit both display microcode variants into *asm*.

    ``disp.loop`` -- the real Dorado's two-instruction grain: one
    instruction starts the munch IOFetch *and* advances the pointer by
    16 (T holds the stride); the second counts, blocks, and branches.

    ``disp3.loop`` -- the rejected three-instruction protocol, where the
    middle instruction explicitly notifies the controller (an OUTPUT to
    the status register) before the task may block.
    """
    asm.registers({"dsp.ptr": REG_PTR, "dsp.cnt": REG_CNT, "dsp.st": REG_ST})

    # --- two-cycle grain (the shipped design) -----------------------------
    asm.label("disp.loop")
    asm.emit(r="dsp.ptr", a="RM", b="T", alu="ADD", load="RM", fetch="fast")
    asm.emit(
        r="dsp.cnt", a="RM", alu="DEC", load="RM", block=True,
        branch=("NONZERO", "disp.loop", "disp.done"),
    )
    asm.label("disp.done")
    asm.emit(b=1, alu="B", load="T")  # build STATUS_DONE in T (FF is data here)
    asm.emit(b="T", ff=FF.OUTPUT, block=True, goto="disp.idle")

    # --- three-cycle grain (the section 6.2.1 alternative) --------------------
    asm.label("disp3.loop")
    asm.emit(r="dsp.ptr", a="RM", b="T", alu="ADD", load="RM", fetch="fast")
    asm.emit(r="dsp.st", b="RM", ff=FF.OUTPUT)  # explicit wakeup removal
    asm.emit(
        r="dsp.cnt", a="RM", alu="DEC", load="RM", block=True,
        branch=("NONZERO", "disp3.loop", "disp3.done"),
    )
    asm.label("disp3.done")
    asm.emit(b=1, alu="B", load="T")
    asm.emit(b="T", ff=FF.OUTPUT, block=True, goto="disp.idle")

    asm.label("disp.idle")
    asm.emit(block=True, goto="disp.idle")
