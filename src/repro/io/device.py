"""Device-controller base machinery.

A Dorado device controller is mostly microcode: the hardware half
(modelled by :class:`Device`) is little more than FIFOs, a couple of
registers on the IOADDRESS/IODATA busses, a wakeup line, and perhaps a
fast-I/O port.  The base class implements the section 6.2.1 wakeup
protocol:

* the controller raises its wakeup line when it has work
  (:meth:`request_service`);
* it observes NEXT, and when it sees its task has been given the
  processor it drops the line -- at the earliest opportunity the
  pipeline allows, which is during the task's first instruction --
  "unless it needs more than one unit of service";
* with ``explicit_notify=True`` the controller instead keeps the line up
  until microcode notifies it through a register write: the "simpler
  design" of section 6.2.1 whose grain is three cycles instead of two
  (experiment E5).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import DeviceError
from ..types import MUNCH_WORDS, word


class Device:
    """Base class for device controllers.

    Subclasses override :meth:`poll` (called every cycle) and the
    register accessors; high-bandwidth devices also override the fast
    port methods.
    """

    def __init__(
        self,
        name: str,
        task: Optional[int],
        io_address: int,
        register_count: int = 2,
        explicit_notify: bool = False,
    ) -> None:
        if task is not None and not 1 <= task <= 15:
            raise DeviceError(f"device task {task} out of range 1..15")
        self.name = name
        self.task = task
        self.io_address = io_address
        self.register_count = register_count
        self.explicit_notify = explicit_notify
        self.attention = False
        self.machine = None
        self._pending_raises: List[int] = []  # cycle each unit was requested
        self._was_granted = False

    # --- lifecycle -----------------------------------------------------------

    def attach(self, machine) -> None:
        self.machine = machine

    def tick(self, machine, granted: bool) -> None:
        """One cycle of device time.

        *granted* is true while the processor's NEXT selects this
        device's task.  Seeing that, the controller retires a pending
        request and (when no more units are wanted) drops the wakeup --
        but only a request raised at least two cycles earlier can be
        retired, because "it takes a minimum of two cycles from the time
        a wakeup changes to the time the change can affect the running
        task" (section 6.2.1): a grant observed sooner must belong to an
        older request.
        """
        if granted and not self.explicit_notify:
            self._retire_seen_request(machine.now)
        self._was_granted = granted
        self.poll(machine)

    def _retire_seen_request(self, now: int) -> None:
        if self._pending_raises and self._pending_raises[0] <= now - 2:
            self._pending_raises.pop(0)
            if not self._pending_raises:
                self.machine.pipe.clear_wakeup(self.task)

    def poll(self, machine) -> None:
        """Subclass hook: advance internal device state by one cycle."""

    # --- the wakeup protocol ----------------------------------------------------

    def request_service(self, units: int = 1) -> None:
        """Raise the wakeup line for *units* units of service."""
        if self.task is None:
            raise DeviceError(f"{self.name} has no task to wake")
        now = self.machine.now if self.machine is not None else 0
        self._pending_raises.extend([now] * units)
        self.machine.pipe.set_wakeup(self.task)

    @property
    def _service_pending(self) -> int:
        """Units requested and not yet retired."""
        return len(self._pending_raises)

    def withdraw_requests(self) -> None:
        """Drop all outstanding requests (level-semantics wakeups).

        Controllers whose wakeup means "N units are ready right now"
        must drop the line when that stops being true -- e.g. when a
        preempted service burst resumes and consumes the units a fresh
        request was counting on.
        """
        self._pending_raises.clear()
        if self.task is not None and self.machine is not None:
            self.machine.pipe.clear_wakeup(self.task)

    def notify(self) -> None:
        """Explicit notification from microcode (the grain-3 protocol)."""
        if self._pending_raises:
            self._pending_raises.pop(0)
        if not self._pending_raises:
            self.machine.pipe.clear_wakeup(self.task)

    # --- snapshot protocol (DESIGN.md section 5.4) -------------------------

    def state_dict(self) -> dict:
        """Wakeup-protocol state common to every controller.

        Subclasses extend this dict with their own FIFOs and timers.
        Construction parameters (name, task, bus address) and the
        ``machine`` back-pointer are wiring, not state; the pending
        raise timestamps are absolute cycle numbers, consistent because
        the machine clock is restored alongside.
        """
        return {
            "attention": self.attention,
            "pending_raises": list(self._pending_raises),
            "was_granted": self._was_granted,
        }

    def load_state(self, state: dict) -> None:
        self.attention = bool(state["attention"])
        self._pending_raises = list(state["pending_raises"])
        self._was_granted = bool(state["was_granted"])

    # --- slow I/O registers -------------------------------------------------------

    def read_register(self, offset: int) -> int:
        raise DeviceError(f"{self.name}: register {offset} is not readable")

    def write_register(self, offset: int, value: int) -> None:
        raise DeviceError(f"{self.name}: register {offset} is not writable")

    # --- fast I/O port --------------------------------------------------------------

    def fast_deliver(self, address: int, words: List[int]) -> None:
        raise DeviceError(f"{self.name} has no fast-I/O input port")

    def fast_supply(self, address: int) -> List[int]:
        raise DeviceError(f"{self.name} has no fast-I/O output port")


class LoopbackDevice(Device):
    """A trivially simple device for tests and the quickstart example.

    Register 0 is a word FIFO: writes push, reads pop.  Register 1 reads
    the FIFO depth.  The fast port stores munches in a dictionary.  The
    host (test) side can queue input words and ask for a wakeup burst.
    """

    def __init__(self, task: Optional[int] = None, io_address: int = 0x10) -> None:
        super().__init__("loopback", task, io_address, register_count=2)
        self.fifo: List[int] = []
        self.munches = {}

    def read_register(self, offset: int) -> int:
        if offset == 0:
            return self.fifo.pop(0) if self.fifo else 0
        if offset == 1:
            return len(self.fifo)
        raise DeviceError(f"loopback: no register {offset}")

    def write_register(self, offset: int, value: int) -> None:
        if offset == 0:
            self.fifo.append(word(value))
            self.attention = True
            return
        if offset == 1:
            self.attention = False
            if self.explicit_notify:
                self.notify()
            return
        raise DeviceError(f"loopback: no register {offset}")

    def fast_deliver(self, address: int, words: List[int]) -> None:
        if len(words) != MUNCH_WORDS:
            raise DeviceError("loopback fast port expects whole munches")
        self.munches[address] = list(words)

    def fast_supply(self, address: int) -> List[int]:
        return list(self.munches.get(address, [0] * MUNCH_WORDS))

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["fifo"] = list(self.fifo)
        state["munches"] = {
            address: list(words) for address, words in self.munches.items()
        }
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self.fifo = list(state["fifo"])
        self.munches = {
            address: list(words) for address, words in state["munches"].items()
        }
