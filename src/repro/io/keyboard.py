"""A keyboard: the polled, attention-driven kind of device.

Not every Dorado device earned a task: low-rate input (the keyboard, the
mouse buttons) raised the **I/O attention** line and was polled by
emulator microcode through the IOATN branch condition (section 6.3.3's
condition 6 here).  This device exercises that other half of the slow
I/O protocol: no wakeups, no task -- just IOATN and INPUT from task 0.
"""

from __future__ import annotations

from typing import List, Optional

from ..asm.assembler import Assembler
from ..core.functions import FF
from ..errors import DeviceError
from ..types import word
from .device import Device

KEYBOARD_IO_ADDRESS = 0x60


class KeyboardDevice(Device):
    """Host-injected keystrokes, drained through INPUT under IOATN."""

    def __init__(self, io_address: int = KEYBOARD_IO_ADDRESS) -> None:
        super().__init__("keyboard", task=None, io_address=io_address,
                         register_count=1)
        self.queue: List[int] = []

    # --- host side ---------------------------------------------------------

    def press(self, code: int) -> None:
        self.queue.append(word(code))
        self.attention = True

    def type_text(self, text: str) -> None:
        for ch in text:
            self.press(ord(ch))

    # --- snapshot protocol (DESIGN.md section 5.4) -------------------------

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["queue"] = list(self.queue)
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self.queue = list(state["queue"])

    # --- bus ------------------------------------------------------------------

    def read_register(self, offset: int) -> int:
        if offset != 0:
            raise DeviceError(f"keyboard: no register {offset}")
        if not self.queue:
            return 0
        code = self.queue.pop(0)
        self.attention = bool(self.queue)
        return code


def keyboard_microcode(asm: Assembler, io_address: int = KEYBOARD_IO_ADDRESS) -> None:
    """CALLable routines for the polling protocol.

    ``kbd.init``  -- point IOADDRESS at the keyboard; returns.
    ``kbd.getch`` -- spin on IOATN until a key is ready, read it into T,
    return.  The spin is the classic busy-wait: on the real machine the
    emulator polled between macroinstructions.
    """
    asm.label("kbd.init")
    asm.emit(b=io_address, alu="B", load="T")
    asm.emit(b="T", ff=FF.IOADDRESS_B, ret=True)

    asm.label("kbd.getch")
    asm.emit(branch=("IOATN", "kbd.got", "kbd.wait"))
    asm.label("kbd.wait")
    asm.emit(goto="kbd.getch")
    asm.label("kbd.got")
    asm.emit(b="INPUT", alu="B", load="T", ret=True)
