"""A network interface controller.

The Dorado's research environment hung off "an interface to a high
bandwidth communication network" (section 2).  This model is an
Ethernet-class interface on the slow I/O system: the host injects
packets, the controller paces their words into a FIFO at line rate, and
the network task's microcode -- the same one-word-per-instruction shape
as the disk's -- stores them into a ring of receive buffers.  Transmit
drains a memory buffer back out.  Its purpose in the reproduction is to
be a *second* concurrent I/O task, so benchmarks can show several
controllers multiplexing the processor with the emulator (experiment
E9 and the examples).
"""

from __future__ import annotations

from typing import List, Optional

from ..asm.assembler import Assembler
from ..core.functions import FF
from ..errors import DeviceError
from ..types import word
from .device import Device

REG_PTR = 0
REG_CNT = 1
REG_ST = 2

STATUS_DONE = 1

NETWORK_TASK = 11
NETWORK_IO_ADDRESS = 0x40


class NetworkController(Device):
    """Receive-and-transmit interface with host-injected packets."""

    def __init__(
        self,
        task: int = NETWORK_TASK,
        io_address: int = NETWORK_IO_ADDRESS,
        word_interval_cycles: int = 16,  #: ~16.7 Mbit/s at 60 ns
    ) -> None:
        super().__init__("network", task, io_address, register_count=2)
        self.word_interval_cycles = word_interval_cycles
        self.rx_queue: List[List[int]] = []   #: packets awaiting reception
        self.rx_current: List[int] = []
        self.fifo: List[int] = []
        self.tx_words: List[int] = []          #: words transmitted onto the wire
        self.tx_expected = 0
        self.tx_requested = 0
        self.rx_remaining = 0
        self.mode = "idle"
        self.packets_received = 0
        self.done = False
        self._timer = 0
        self._done_wakeup_sent = False

    # --- snapshot protocol (DESIGN.md section 5.4) -------------------------

    def state_dict(self) -> dict:
        state = super().state_dict()
        state.update(
            rx_queue=[list(packet) for packet in self.rx_queue],
            rx_current=list(self.rx_current),
            fifo=list(self.fifo),
            tx_words=list(self.tx_words),
            tx_expected=self.tx_expected,
            tx_requested=self.tx_requested,
            rx_remaining=self.rx_remaining,
            mode=self.mode,
            packets_received=self.packets_received,
            done=self.done,
            timer=self._timer,
            done_wakeup_sent=self._done_wakeup_sent,
            unclaimed=getattr(self, "_unclaimed", 0),
        )
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self.rx_queue = [list(packet) for packet in state["rx_queue"]]
        self.rx_current = list(state["rx_current"])
        self.fifo = list(state["fifo"])
        self.tx_words = list(state["tx_words"])
        self.tx_expected = state["tx_expected"]
        self.tx_requested = state["tx_requested"]
        self.rx_remaining = state["rx_remaining"]
        self.mode = state["mode"]
        self.packets_received = state["packets_received"]
        self.done = bool(state["done"])
        self._timer = state["timer"]
        self._done_wakeup_sent = bool(state["done_wakeup_sent"])
        self._unclaimed = state["unclaimed"]

    # --- host-side wire ---------------------------------------------------

    def inject_packet(self, words: List[int]) -> None:
        """Queue a packet on the (simulated) wire."""
        if len(words) % 2:
            raise DeviceError("packets must be an even number of words")
        self.rx_queue.append([word(w) for w in words])

    # --- transfer setup ---------------------------------------------------------

    def _setup(self, machine, buffer_va: int, count_pairs: int, entry: str) -> None:
        machine.regs.write_rbase(self.task, self.task)
        machine.regs.write_ioaddress(self.task, self.io_address)
        machine.regs.write_membase(self.task, 0)
        bank = self.task * 16
        machine.regs.write_rm_absolute(bank + REG_PTR, buffer_va)
        machine.regs.write_rm_absolute(bank + REG_CNT, count_pairs)
        machine.regs.write_rm_absolute(bank + REG_ST, STATUS_DONE)
        machine.pipe.write_tpc(self.task, machine.address_of(entry))

    def begin_receive(self, machine, buffer_va: int, packet_words: int) -> None:
        """Arm reception of the next *packet_words*-word packet."""
        if self.mode != "idle":
            raise DeviceError("network transfer already in progress")
        if packet_words % 2:
            raise DeviceError(
                "network receive must be an even number of words: the rx "
                f"microcode loop stores word pairs ({packet_words} armed)"
            )
        self._setup(machine, buffer_va, packet_words // 2, "net.rx_loop")
        self.mode = "rx"
        self.fifo = []
        self.done = False
        self._unclaimed = 0
        # A packet longer than the previous arm leaves its tail in
        # rx_current; a fresh arm must never replay it into this packet.
        self.rx_current = []
        self.rx_remaining = packet_words
        self._done_wakeup_sent = False
        self._timer = self.word_interval_cycles

    def begin_transmit(self, machine, buffer_va: int, packet_words: int) -> None:
        """Transmit *packet_words* words from memory onto the wire."""
        if self.mode != "idle":
            raise DeviceError("network transfer already in progress")
        if packet_words % 2:
            raise DeviceError(
                "network transmit must be an even number of words: the tx "
                f"microcode loop fetches word pairs ({packet_words} armed)"
            )
        self._setup(machine, buffer_va, packet_words // 2, "net.tx_prime")
        self.mode = "tx"
        self.fifo = []
        self.tx_words = []
        self.tx_expected = packet_words
        self.tx_requested = 0
        self.done = False
        self._done_wakeup_sent = False
        self._timer = self.word_interval_cycles
        self.request_service(1)  # run the priming fetch

    # --- device clock --------------------------------------------------------------

    def poll(self, machine) -> None:
        if self.mode == "rx":
            # Invariant (re-armed in begin_receive): wire words only sit
            # in rx_current while this arm still wants them.
            assert not self.rx_current or self.rx_remaining > 0, (
                "network: stale rx_current words survived across receives"
            )
            if not self.rx_current and self.rx_queue and self.rx_remaining > 0:
                self.rx_current = self.rx_queue.pop(0)
            self._timer -= 1
            if self._timer <= 0 and self.rx_current and self.rx_remaining > 0:
                self.fifo.append(self.rx_current.pop(0))
                self.rx_remaining -= 1
                self._unclaimed += 1
                self._timer = self.word_interval_cycles
                if self.rx_remaining == 0:
                    # Over-long wire packet: truncate at the armed length
                    # rather than letting the tail bleed into the next
                    # receive.
                    self.rx_current = []
            # Claim accounting: see repro/io/disk.py.
            if self._unclaimed >= 2:
                self._unclaimed -= 2
                self.request_service(1)
            if (
                self.rx_remaining == 0
                and not self.fifo
                and not self._done_wakeup_sent
                and self._service_pending == 0 and not self._was_granted
            ):
                self._done_wakeup_sent = True
                self.request_service(1)
        elif self.mode == "tx":
            self._timer -= 1
            if self._timer <= 0 and self.fifo:
                self.tx_words.append(self.fifo.pop(0))
                self._timer = self.word_interval_cycles
            requested_all = self.tx_requested >= self.tx_expected
            if not requested_all and len(self.fifo) <= 2 and self._service_pending == 0 and not self._was_granted:
                self.request_service(1)
                # Each service unit fetches one word pair; clamp so the
                # device counter can never run ahead of the microcode's.
                self.tx_requested = min(self.tx_requested + 2, self.tx_expected)
            elif (
                requested_all
                and not self._done_wakeup_sent
                and self._service_pending == 0 and not self._was_granted
            ):
                self._done_wakeup_sent = True
                self.request_service(1)
        elif self.mode == "tx_drain":
            self._timer -= 1
            if self._timer <= 0 and self.fifo:
                self.tx_words.append(self.fifo.pop(0))
                self._timer = self.word_interval_cycles
            if not self.fifo:
                self.mode = "idle"
                self.done = True

    # --- bus registers ------------------------------------------------------------------

    def read_register(self, offset: int) -> int:
        if offset == 0:
            if not self.fifo:
                # Diagnosable in the PR 5 failure-taxonomy style: enough
                # device context to triage without a live machine.
                cycle = self.machine.now if self.machine is not None else 0
                raise DeviceError(
                    f"network RX FIFO underrun (task {self.task}, "
                    f"cycle {cycle}, mode {self.mode}, "
                    f"rx_remaining {self.rx_remaining}, "
                    f"tx {self.tx_requested}/{self.tx_expected} words "
                    f"requested, {self._service_pending} service unit(s) "
                    "pending)"
                )
            return self.fifo.pop(0)
        if offset == 1:
            return 1 if self.done else 0
        raise DeviceError(f"network: no register {offset}")

    def write_register(self, offset: int, value: int) -> None:
        if offset == 0:
            self.fifo.append(word(value))
            return
        if offset == 1:
            if value == STATUS_DONE:
                if self.mode == "rx":
                    self.mode = "idle"
                    self.done = True
                    self.packets_received += 1
                elif self.mode == "tx":
                    self.mode = "tx_drain"
                self.attention = True
            return
        raise DeviceError(f"network: no register {offset}")


def network_microcode(asm: Assembler, io_address: int = NETWORK_IO_ADDRESS) -> None:
    """Emit the network task's microcode (same shapes as the disk's)."""
    asm.registers({"net.ptr": REG_PTR, "net.cnt": REG_CNT, "net.st": REG_ST})

    asm.label("net.rx_loop")
    asm.emit(r="net.ptr", a="RM", b="INPUT", store=True, alu="INC", load="RM")
    asm.emit(r="net.ptr", a="RM", b="INPUT", store=True, alu="INC", load="RM")
    asm.emit(
        r="net.cnt", a="RM", alu="DEC", load="RM", block=True,
        branch=("NONZERO", "net.rx_loop", "net.rx_done"),
    )
    asm.label("net.rx_done")
    asm.emit(b=io_address + 1, alu="B", load="T")
    asm.emit(b="T", ff=FF.IOADDRESS_B)
    asm.emit(r="net.st", b="RM", ff=FF.OUTPUT, block=True, goto="net.idle")

    asm.label("net.tx_prime")
    asm.emit(r="net.ptr", a="RM", fetch=True, alu="INC", load="RM",
             block=True, goto="net.tx_loop")
    asm.label("net.tx_loop")
    asm.emit(r="net.ptr", a="RM", fetch=True, b="MD", alu="B", load="T")
    asm.emit(r="net.ptr", a="RM", b="T", ff=FF.OUTPUT, alu="INC", load="RM")
    asm.emit(r="net.ptr", a="RM", fetch=True, ff=FF.OUTPUT_MD, alu="INC", load="RM")
    asm.emit(
        r="net.cnt", a="RM", alu="DEC", load="RM", block=True,
        branch=("NONZERO", "net.tx_loop", "net.tx_done"),
    )
    asm.label("net.tx_done")
    asm.emit(b=io_address + 1, alu="B", load="T")
    asm.emit(b="T", ff=FF.IOADDRESS_B)
    asm.emit(r="net.st", b="RM", ff=FF.OUTPUT, block=True, goto="net.idle")

    asm.label("net.idle")
    asm.emit(block=True, goto="net.idle")
