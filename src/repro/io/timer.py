"""A housekeeping timer task.

Real Dorados ran periodic microcode tasks (refresh, time-of-day) beside
the device controllers.  This model wakes its task at a fixed interval;
the microcode maintains a 32-bit tick counter in main memory using the
saved-carry multi-precision add (ALUFM slot 11, section 6.3.3) -- one
eight-instruction service burst per tick.
"""

from __future__ import annotations

from ..asm.assembler import Assembler
from .device import Device

TIMER_TASK = 8
TIMER_IO_ADDRESS = 0x50

REG_PTR = 0  #: VA of the low word of the two-word tick counter
REG_HI = 1   #: scratch: VA of the high word


class TimerDevice(Device):
    """Raises a wakeup every *interval_cycles*."""

    def __init__(
        self,
        interval_cycles: int = 1000,
        task: int = TIMER_TASK,
        io_address: int = TIMER_IO_ADDRESS,
    ) -> None:
        super().__init__("timer", task, io_address, register_count=1)
        self.interval_cycles = interval_cycles
        self.enabled = False
        self.ticks_raised = 0
        self._timer = 0

    def start(self, machine, counter_va: int) -> None:
        """Point the task's microcode at the counter and begin ticking."""
        machine.regs.write_rbase(self.task, self.task)
        machine.regs.write_membase(self.task, 0)
        machine.regs.write_rm_absolute(self.task * 16 + REG_PTR, counter_va)
        machine.pipe.write_tpc(self.task, machine.address_of("tmr.tick"))
        self.enabled = True
        self._timer = self.interval_cycles

    def stop(self) -> None:
        self.enabled = False

    def poll(self, machine) -> None:
        if not self.enabled:
            return
        self._timer -= 1
        if self._timer <= 0:
            self._timer = self.interval_cycles
            self.ticks_raised += 1
            self.request_service(1)

    def read_register(self, offset: int) -> int:
        return self.ticks_raised & 0xFFFF

    # --- snapshot protocol (DESIGN.md section 5.4) -------------------------

    def state_dict(self) -> dict:
        state = super().state_dict()
        state.update(
            enabled=self.enabled,
            ticks_raised=self.ticks_raised,
            timer=self._timer,
        )
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self.enabled = bool(state["enabled"])
        self.ticks_raised = state["ticks_raised"]
        self._timer = state["timer"]


def timer_microcode(asm: Assembler) -> None:
    """One tick: 32-bit increment of [ptr] (low) and [ptr+1] (high).

    The low-word ADD latches its carry-out; the high word adds it back
    with ALUFM slot 11 (A+B+saved carry).  The moves in between use
    logical ALU functions, which leave the saved carry alone.
    """
    asm.registers({"tmr.ptr": REG_PTR, "tmr.hi": REG_HI})

    asm.label("tmr.tick")
    asm.emit(r="tmr.ptr", a="RM", fetch=True)                 # low word
    asm.emit(r="tmr.ptr", a="RM", alu="INC", load="T")
    asm.emit(r="tmr.hi", b="T", alu="B", load="RM")           # hi address
    asm.emit(a="MD", b=1, alu="ADD", load="T")                # low + 1 (carry!)
    asm.emit(r="tmr.ptr", a="RM", b="T", store=True)          # store low
    asm.emit(r="tmr.hi", a="RM", fetch=True)                  # high word
    asm.emit(a="MD", b=0, alu="ADDC", load="T")               # + saved carry
    asm.emit(r="tmr.hi", a="RM", b="T", store=True,
             block=True, goto="tmr.tick")
