"""The disk controller and its microcode (section 7).

"I/O devices with transfer rates up to 10 megabits/sec are handled by
the processor via the IODATA and IOADDRESS busses.  The microcode for
the disk takes three cycles to transfer two words each way; thus the 10
megabit/sec disk consumes 5% of the processor."

The controller hardware is a word FIFO clocked at the disk's data rate
(one 16-bit word per ~27 cycles is 9.9 Mbit/s at 60 ns) plus a
status/command register.  The microcode moves one word per
microinstruction -- "both the memory reference and the I/O transfer can
be specified in a single instruction" (section 5.8) -- so a wakeup
services two words in three cycles in the read direction.  The write
direction costs four cycles for two words in our model, because a
fetched word must age two cycles in the memory pipeline before IODATA
can take it (see EXPERIMENTS.md, E3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..asm.assembler import Assembler
from ..core.functions import FF
from ..errors import DeviceError
from ..types import word
from .device import Device

#: Microcode register allocation within the disk task's RM bank.
REG_PTR = 0   #: buffer pointer (virtual address displacement)
REG_CNT = 1   #: remaining word pairs
REG_ST = 2    #: status code to OUTPUT on completion

STATUS_DONE = 1

#: Default task and bus address for the disk.
DISK_TASK = 13
DISK_IO_ADDRESS = 0x20


@dataclass(frozen=True)
class DiskGeometry:
    """Synthetic drive parameters."""

    sectors: int = 64
    words_per_sector: int = 256
    word_interval_cycles: int = 27  #: ~9.9 Mbit/s at 60 ns/cycle
    spare_sectors: int = 2          #: replacement pool for bad sectors
    max_retries: int = 4            #: retry budget per transfer error
    retry_backoff_cycles: int = 32  #: wait between retry attempts

    def __post_init__(self) -> None:
        if self.words_per_sector % 2:
            raise DeviceError("words_per_sector must be even (two words per wakeup)")
        if self.spare_sectors < 0 or self.max_retries < 0:
            raise DeviceError("spare_sectors and max_retries cannot be negative")
        if self.retry_backoff_cycles < 1:
            raise DeviceError("retry_backoff_cycles must be at least 1")


class DiskController(Device):
    """An 80 MB-class removable disk, scaled down and synthesized."""

    def __init__(
        self,
        geometry: DiskGeometry = DiskGeometry(),
        task: int = DISK_TASK,
        io_address: int = DISK_IO_ADDRESS,
    ) -> None:
        super().__init__("disk", task, io_address, register_count=2)
        self.geometry = geometry
        self.surface: List[List[int]] = [
            [0] * geometry.words_per_sector
            for _ in range(geometry.sectors + geometry.spare_sectors)
        ]
        self.mode = "idle"
        self.sector = 0
        self.word_index = 0
        self.requested_words = 0
        self.fifo: List[int] = []
        self.done = False
        self.hard_error = False
        #: Bad-sector table: logical sector -> spare physical sector.
        self.remap: Dict[int, int] = {}
        self._next_spare = geometry.sectors
        self._timer = 0
        self._done_wakeup_sent = False
        self._injector = None
        self._fail_remaining = 0   #: failures left in the current error
        self._error_attempts = 0   #: attempts burned on the current error

    def attach(self, machine) -> None:
        super().attach(machine)
        self._injector = machine.memory.injector

    # --- snapshot protocol (DESIGN.md section 5.4) -------------------------

    def state_dict(self) -> dict:
        state = super().state_dict()
        state.update(
            surface=[list(sector) for sector in self.surface],
            mode=self.mode,
            sector=self.sector,
            word_index=self.word_index,
            requested_words=self.requested_words,
            fifo=list(self.fifo),
            done=self.done,
            hard_error=self.hard_error,
            remap=dict(self.remap),
            next_spare=self._next_spare,
            timer=self._timer,
            done_wakeup_sent=self._done_wakeup_sent,
            fail_remaining=self._fail_remaining,
            error_attempts=self._error_attempts,
            unclaimed=getattr(self, "_unclaimed", 0),
        )
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self.surface = [list(sector) for sector in state["surface"]]
        self.mode = state["mode"]
        self.sector = state["sector"]
        self.word_index = state["word_index"]
        self.requested_words = state["requested_words"]
        self.fifo = list(state["fifo"])
        self.done = bool(state["done"])
        self.hard_error = bool(state["hard_error"])
        self.remap = dict(state["remap"])
        self._next_spare = state["next_spare"]
        self._timer = state["timer"]
        self._done_wakeup_sent = bool(state["done_wakeup_sent"])
        self._fail_remaining = state["fail_remaining"]
        self._error_attempts = state["error_attempts"]
        self._unclaimed = state["unclaimed"]

    # --- host-side surface access ------------------------------------------

    def _physical(self, sector: int) -> int:
        """Logical sector to physical, through the bad-sector table."""
        return self.remap.get(sector, sector)

    def fill_sector(self, sector: int, values: List[int]) -> None:
        if len(values) != self.geometry.words_per_sector:
            raise DeviceError("fill_sector needs a full sector of words")
        self.surface[self._physical(sector)] = [word(v) for v in values]

    def read_sector_image(self, sector: int) -> List[int]:
        return list(self.surface[self._physical(sector)])

    # --- transfer setup (the console pokes registers and TPC) -----------------

    def _setup(self, machine, buffer_va: int, entry: str) -> None:
        machine.regs.write_rbase(self.task, self.task)
        machine.regs.write_ioaddress(self.task, self.io_address)
        machine.regs.write_membase(self.task, 0)
        bank = self.task * 16
        machine.regs.write_rm_absolute(bank + REG_PTR, buffer_va)
        machine.regs.write_rm_absolute(bank + REG_CNT, self.geometry.words_per_sector // 2)
        machine.regs.write_rm_absolute(bank + REG_ST, STATUS_DONE)
        machine.pipe.write_tpc(self.task, machine.address_of(entry))

    def begin_read(self, machine, sector: int, buffer_va: int) -> None:
        """Start a sector read into memory at *buffer_va*."""
        if self.mode != "idle":
            raise DeviceError("disk transfer already in progress")
        self._setup(machine, buffer_va, "disk.read_loop")
        self.mode = "read"
        self.sector = sector
        self.word_index = 0
        self.fifo = []
        self.done = False
        self.hard_error = False
        self._fail_remaining = 0
        self._error_attempts = 0
        self._done_wakeup_sent = False
        self._unclaimed = 0
        self._timer = self.geometry.word_interval_cycles

    def begin_write(self, machine, sector: int, buffer_va: int) -> None:
        """Start a sector write from memory at *buffer_va*."""
        if self.mode != "idle":
            raise DeviceError("disk transfer already in progress")
        self._setup(machine, buffer_va, "disk.write_prime")
        self.mode = "write"
        self.sector = sector
        self.word_index = 0
        self.requested_words = 0
        self.fifo = []
        self.done = False
        self.hard_error = False
        self._fail_remaining = 0
        self._error_attempts = 0
        self._done_wakeup_sent = False
        self._timer = self.geometry.word_interval_cycles
        # The priming instruction needs one unit of service to run.
        self.request_service(1)

    # --- transfer errors: bounded retry, then remap (fault injection) ---------

    def _transfer_ok(self, machine) -> bool:
        """Gate one surface word transfer through the injected-error model.

        A due :class:`~repro.fault.plan.FaultKind.DISK_TRANSFER` event
        makes the next ``arg`` attempts fail; each failure costs one
        ``retry_backoff_cycles`` wait.  An error outlasting the
        ``max_retries`` budget marks the sector bad and degrades
        gracefully: the transfer continues on a spare sector (see
        :meth:`_give_up`).  Returns False while a retry is pending.
        """
        if self._injector is None:
            return True
        if self._fail_remaining == 0:
            event = self._injector.disk_error_due()
            if event is None:
                return True
            self._fail_remaining = max(1, event.arg)
            self._error_attempts = 0
        self._fail_remaining -= 1
        self._error_attempts += 1
        machine.counters.disk_retries += 1
        if self._error_attempts > self.geometry.max_retries:
            self._fail_remaining = 0
            self._give_up(machine)
            return True
        self._injector.record(
            "disk", "retry", self.sector,
            f"attempt {self._error_attempts} failed at word {self.word_index}",
        )
        self._timer = self.geometry.retry_backoff_cycles
        return False

    def _give_up(self, machine) -> None:
        """Retry budget exhausted: the sector is bad.  Degrade, don't die."""
        logical = self.sector
        spare = self._next_spare
        if spare >= len(self.surface):
            self.hard_error = True
            self._injector.record(
                "disk", "hard_error", logical, "spare pool exhausted"
            )
            return
        self._next_spare += 1
        # Carry over whatever already landed on the dying sector so a
        # partially-written transfer finishes intact on the spare.
        self.surface[spare] = list(self.surface[self._physical(logical)])
        self.remap[logical] = spare
        machine.counters.disk_remaps += 1
        if self.mode == "read":
            # The data under the failed word could not be read reliably;
            # the remap protects future writes, and the status register
            # tells the host this transfer is suspect.
            self.hard_error = True
            self._injector.record(
                "disk", "remap", logical,
                f"read unreliable; sector remapped to spare {spare}",
            )
        else:
            self._injector.record(
                "disk", "remap", logical,
                f"write continues on spare {spare}",
            )

    # --- device clock -----------------------------------------------------------

    def poll(self, machine) -> None:
        if self.mode == "read":
            self._timer -= 1
            if self._timer <= 0 and self.word_index < self.geometry.words_per_sector:
                if self._transfer_ok(machine):
                    self.fifo.append(self.surface[self._physical(self.sector)][self.word_index])
                    self.word_index += 1
                    self._unclaimed += 1
                    self._timer = self.geometry.word_interval_cycles
            # Each request claims exactly the two words that triggered
            # it, so a burst resumed after preemption can never race a
            # fresh request for the same data.
            if self._unclaimed >= 2:
                self._unclaimed -= 2
                self.request_service(1)
            # All words consumed by microcode: one last wakeup runs the
            # done path (the task blocked with TPC at disk.read_done).
            if (
                self.word_index >= self.geometry.words_per_sector
                and not self.fifo
                and not self._done_wakeup_sent
                and self._service_pending == 0 and not self._was_granted
            ):
                self._done_wakeup_sent = True
                self.request_service(1)
        elif self.mode == "write":
            self._timer -= 1
            if self._timer <= 0 and self.fifo and self.word_index < self.geometry.words_per_sector:
                if self._transfer_ok(machine):
                    self.surface[self._physical(self.sector)][self.word_index] = self.fifo.pop(0)
                    self.word_index += 1
                    self._timer = self.geometry.word_interval_cycles
            want_more = self.requested_words < self.geometry.words_per_sector
            if want_more and len(self.fifo) <= 2 and self._service_pending == 0 and not self._was_granted:
                self.request_service(1)
                self.requested_words += 2
            elif (
                not want_more
                and not self._done_wakeup_sent
                and self._service_pending == 0 and not self._was_granted
            ):
                self._done_wakeup_sent = True
                self.request_service(1)

    # --- bus registers --------------------------------------------------------------

    def read_register(self, offset: int) -> int:
        if offset == 0:
            if not self.fifo:
                raise DeviceError("disk data FIFO underrun (microcode/pacing bug)")
            return self.fifo.pop(0)
        if offset == 1:
            return (
                (1 if self.done else 0)
                | (2 if self.mode != "idle" else 0)
                | (4 if self.hard_error else 0)
            )
        raise DeviceError(f"disk: no register {offset}")

    def write_register(self, offset: int, value: int) -> None:
        if offset == 0:
            self.fifo.append(word(value))
            return
        if offset == 1:
            if value == STATUS_DONE:
                if self.mode == "read":
                    self.mode = "idle"
                    self.done = True
                elif self.mode == "write":
                    # Microcode is done fetching; the surface finishes
                    # absorbing the FIFO at the data rate.
                    self.mode = "write_drain"
                self.attention = True
            return
        raise DeviceError(f"disk: no register {offset}")

    def tick(self, machine, granted: bool) -> None:
        super().tick(machine, granted)
        if self.mode == "write_drain":
            self._timer -= 1
            if self._timer <= 0 and self.fifo and self.word_index < self.geometry.words_per_sector:
                if self._transfer_ok(machine):
                    self.surface[self._physical(self.sector)][self.word_index] = self.fifo.pop(0)
                    self.word_index += 1
                    self._timer = self.geometry.word_interval_cycles
            if not self.fifo or self.word_index >= self.geometry.words_per_sector:
                self.mode = "idle"
                self.done = True


def disk_microcode(asm: Assembler, io_address: int = DISK_IO_ADDRESS) -> None:
    """Emit the disk task's microcode into *asm*.

    Read direction -- the paper's three cycles for two words: each word
    moves device-to-memory in a single microinstruction (Store with the
    INPUT word on B, while the ALU bumps the buffer pointer), and the
    third instruction counts, blocks, and branches.

    Write direction -- four cycles for two words: T buffers one word so
    each fetch is two cycles old before OUTPUT uses it.
    """
    asm.registers({"dsk.ptr": REG_PTR, "dsk.cnt": REG_CNT, "dsk.st": REG_ST})

    # --- read: device -> memory ---------------------------------------------
    asm.label("disk.read_loop")
    asm.emit(r="dsk.ptr", a="RM", b="INPUT", store=True, alu="INC", load="RM")
    asm.emit(r="dsk.ptr", a="RM", b="INPUT", store=True, alu="INC", load="RM")
    asm.emit(
        r="dsk.cnt", a="RM", alu="DEC", load="RM", block=True,
        branch=("NONZERO", "disk.read_loop", "disk.read_done"),
    )
    # Completion: point IOADDRESS at the status register, then OUTPUT the
    # done code.  (The retarget takes two instructions because a literal
    # on B and the IOADDRESS_B function both need FF -- section 5.5.)
    asm.label("disk.read_done")
    asm.emit(b=io_address + 1, alu="B", load="T")
    asm.emit(b="T", ff=FF.IOADDRESS_B)
    asm.emit(r="dsk.st", b="RM", ff=FF.OUTPUT, block=True, goto="disk.idle")

    # --- write: memory -> device -----------------------------------------------
    # Prime: fetch word 0 so MD is loaded when the loop first runs.
    asm.label("disk.write_prime")
    asm.emit(r="dsk.ptr", a="RM", fetch=True, alu="INC", load="RM",
             block=True, goto="disk.write_loop")
    # Invariant entering the loop: MD = word[p], ptr = p + 1.
    asm.label("disk.write_loop")
    asm.emit(r="dsk.ptr", a="RM", fetch=True, b="MD", alu="B", load="T")
    asm.emit(r="dsk.ptr", a="RM", b="T", ff=FF.OUTPUT, alu="INC", load="RM")
    asm.emit(r="dsk.ptr", a="RM", fetch=True, ff=FF.OUTPUT_MD, alu="INC", load="RM")
    asm.emit(
        r="dsk.cnt", a="RM", alu="DEC", load="RM", block=True,
        branch=("NONZERO", "disk.write_loop", "disk.write_done"),
    )
    asm.label("disk.write_done")
    asm.emit(b=io_address + 1, alu="B", load="T")
    asm.emit(b="T", ff=FF.IOADDRESS_B)
    asm.emit(r="dsk.st", b="RM", ff=FF.OUTPUT, block=True, goto="disk.idle")

    # --- idle: woken spuriously, just block again -------------------------------
    asm.label("disk.idle")
    asm.emit(block=True, goto="disk.idle")
