"""The disk controller and its microcode (section 7).

"I/O devices with transfer rates up to 10 megabits/sec are handled by
the processor via the IODATA and IOADDRESS busses.  The microcode for
the disk takes three cycles to transfer two words each way; thus the 10
megabit/sec disk consumes 5% of the processor."

The controller hardware is a word FIFO clocked at the disk's data rate
(one 16-bit word per ~27 cycles is 9.9 Mbit/s at 60 ns) plus a
status/command register.  The microcode moves one word per
microinstruction -- "both the memory reference and the I/O transfer can
be specified in a single instruction" (section 5.8) -- so a wakeup
services two words in three cycles in the read direction.  The write
direction costs four cycles for two words in our model, because a
fetched word must age two cycles in the memory pipeline before IODATA
can take it (see EXPERIMENTS.md, E3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..asm.assembler import Assembler
from ..core.functions import FF
from ..errors import DeviceError
from ..types import word
from .device import Device

#: Microcode register allocation within the disk task's RM bank.
REG_PTR = 0   #: buffer pointer (virtual address displacement)
REG_CNT = 1   #: remaining word pairs
REG_ST = 2    #: status code to OUTPUT on completion

STATUS_DONE = 1

#: Default task and bus address for the disk.
DISK_TASK = 13
DISK_IO_ADDRESS = 0x20


@dataclass(frozen=True)
class DiskGeometry:
    """Synthetic drive parameters."""

    sectors: int = 64
    words_per_sector: int = 256
    word_interval_cycles: int = 27  #: ~9.9 Mbit/s at 60 ns/cycle

    def __post_init__(self) -> None:
        if self.words_per_sector % 2:
            raise DeviceError("words_per_sector must be even (two words per wakeup)")


class DiskController(Device):
    """An 80 MB-class removable disk, scaled down and synthesized."""

    def __init__(
        self,
        geometry: DiskGeometry = DiskGeometry(),
        task: int = DISK_TASK,
        io_address: int = DISK_IO_ADDRESS,
    ) -> None:
        super().__init__("disk", task, io_address, register_count=2)
        self.geometry = geometry
        self.surface: List[List[int]] = [
            [0] * geometry.words_per_sector for _ in range(geometry.sectors)
        ]
        self.mode = "idle"
        self.sector = 0
        self.word_index = 0
        self.requested_words = 0
        self.fifo: List[int] = []
        self.done = False
        self._timer = 0
        self._done_wakeup_sent = False

    # --- host-side surface access ------------------------------------------

    def fill_sector(self, sector: int, values: List[int]) -> None:
        if len(values) != self.geometry.words_per_sector:
            raise DeviceError("fill_sector needs a full sector of words")
        self.surface[sector] = [word(v) for v in values]

    def read_sector_image(self, sector: int) -> List[int]:
        return list(self.surface[sector])

    # --- transfer setup (the console pokes registers and TPC) -----------------

    def _setup(self, machine, buffer_va: int, entry: str) -> None:
        machine.regs.write_rbase(self.task, self.task)
        machine.regs.write_ioaddress(self.task, self.io_address)
        machine.regs.write_membase(self.task, 0)
        bank = self.task * 16
        machine.regs.write_rm_absolute(bank + REG_PTR, buffer_va)
        machine.regs.write_rm_absolute(bank + REG_CNT, self.geometry.words_per_sector // 2)
        machine.regs.write_rm_absolute(bank + REG_ST, STATUS_DONE)
        machine.pipe.write_tpc(self.task, machine.address_of(entry))

    def begin_read(self, machine, sector: int, buffer_va: int) -> None:
        """Start a sector read into memory at *buffer_va*."""
        if self.mode != "idle":
            raise DeviceError("disk transfer already in progress")
        self._setup(machine, buffer_va, "disk.read_loop")
        self.mode = "read"
        self.sector = sector
        self.word_index = 0
        self.fifo = []
        self.done = False
        self._done_wakeup_sent = False
        self._unclaimed = 0
        self._timer = self.geometry.word_interval_cycles

    def begin_write(self, machine, sector: int, buffer_va: int) -> None:
        """Start a sector write from memory at *buffer_va*."""
        if self.mode != "idle":
            raise DeviceError("disk transfer already in progress")
        self._setup(machine, buffer_va, "disk.write_prime")
        self.mode = "write"
        self.sector = sector
        self.word_index = 0
        self.requested_words = 0
        self.fifo = []
        self.done = False
        self._done_wakeup_sent = False
        self._timer = self.geometry.word_interval_cycles
        # The priming instruction needs one unit of service to run.
        self.request_service(1)

    # --- device clock -----------------------------------------------------------

    def poll(self, machine) -> None:
        if self.mode == "read":
            self._timer -= 1
            if self._timer <= 0 and self.word_index < self.geometry.words_per_sector:
                self.fifo.append(self.surface[self.sector][self.word_index])
                self.word_index += 1
                self._unclaimed += 1
                self._timer = self.geometry.word_interval_cycles
            # Each request claims exactly the two words that triggered
            # it, so a burst resumed after preemption can never race a
            # fresh request for the same data.
            if self._unclaimed >= 2:
                self._unclaimed -= 2
                self.request_service(1)
            # All words consumed by microcode: one last wakeup runs the
            # done path (the task blocked with TPC at disk.read_done).
            if (
                self.word_index >= self.geometry.words_per_sector
                and not self.fifo
                and not self._done_wakeup_sent
                and self._service_pending == 0 and not self._was_granted
            ):
                self._done_wakeup_sent = True
                self.request_service(1)
        elif self.mode == "write":
            self._timer -= 1
            if self._timer <= 0 and self.fifo and self.word_index < self.geometry.words_per_sector:
                self.surface[self.sector][self.word_index] = self.fifo.pop(0)
                self.word_index += 1
                self._timer = self.geometry.word_interval_cycles
            want_more = self.requested_words < self.geometry.words_per_sector
            if want_more and len(self.fifo) <= 2 and self._service_pending == 0 and not self._was_granted:
                self.request_service(1)
                self.requested_words += 2
            elif (
                not want_more
                and not self._done_wakeup_sent
                and self._service_pending == 0 and not self._was_granted
            ):
                self._done_wakeup_sent = True
                self.request_service(1)

    # --- bus registers --------------------------------------------------------------

    def read_register(self, offset: int) -> int:
        if offset == 0:
            if not self.fifo:
                raise DeviceError("disk data FIFO underrun (microcode/pacing bug)")
            return self.fifo.pop(0)
        if offset == 1:
            return (1 if self.done else 0) | (2 if self.mode != "idle" else 0)
        raise DeviceError(f"disk: no register {offset}")

    def write_register(self, offset: int, value: int) -> None:
        if offset == 0:
            self.fifo.append(word(value))
            return
        if offset == 1:
            if value == STATUS_DONE:
                if self.mode == "read":
                    self.mode = "idle"
                    self.done = True
                elif self.mode == "write":
                    # Microcode is done fetching; the surface finishes
                    # absorbing the FIFO at the data rate.
                    self.mode = "write_drain"
                self.attention = True
            return
        raise DeviceError(f"disk: no register {offset}")

    def tick(self, machine, granted: bool) -> None:
        super().tick(machine, granted)
        if self.mode == "write_drain":
            self._timer -= 1
            if self._timer <= 0 and self.fifo and self.word_index < self.geometry.words_per_sector:
                self.surface[self.sector][self.word_index] = self.fifo.pop(0)
                self.word_index += 1
                self._timer = self.geometry.word_interval_cycles
            if not self.fifo or self.word_index >= self.geometry.words_per_sector:
                self.mode = "idle"
                self.done = True


def disk_microcode(asm: Assembler, io_address: int = DISK_IO_ADDRESS) -> None:
    """Emit the disk task's microcode into *asm*.

    Read direction -- the paper's three cycles for two words: each word
    moves device-to-memory in a single microinstruction (Store with the
    INPUT word on B, while the ALU bumps the buffer pointer), and the
    third instruction counts, blocks, and branches.

    Write direction -- four cycles for two words: T buffers one word so
    each fetch is two cycles old before OUTPUT uses it.
    """
    asm.registers({"dsk.ptr": REG_PTR, "dsk.cnt": REG_CNT, "dsk.st": REG_ST})

    # --- read: device -> memory ---------------------------------------------
    asm.label("disk.read_loop")
    asm.emit(r="dsk.ptr", a="RM", b="INPUT", store=True, alu="INC", load="RM")
    asm.emit(r="dsk.ptr", a="RM", b="INPUT", store=True, alu="INC", load="RM")
    asm.emit(
        r="dsk.cnt", a="RM", alu="DEC", load="RM", block=True,
        branch=("NONZERO", "disk.read_loop", "disk.read_done"),
    )
    # Completion: point IOADDRESS at the status register, then OUTPUT the
    # done code.  (The retarget takes two instructions because a literal
    # on B and the IOADDRESS_B function both need FF -- section 5.5.)
    asm.label("disk.read_done")
    asm.emit(b=io_address + 1, alu="B", load="T")
    asm.emit(b="T", ff=FF.IOADDRESS_B)
    asm.emit(r="dsk.st", b="RM", ff=FF.OUTPUT, block=True, goto="disk.idle")

    # --- write: memory -> device -----------------------------------------------
    # Prime: fetch word 0 so MD is loaded when the loop first runs.
    asm.label("disk.write_prime")
    asm.emit(r="dsk.ptr", a="RM", fetch=True, alu="INC", load="RM",
             block=True, goto="disk.write_loop")
    # Invariant entering the loop: MD = word[p], ptr = p + 1.
    asm.label("disk.write_loop")
    asm.emit(r="dsk.ptr", a="RM", fetch=True, b="MD", alu="B", load="T")
    asm.emit(r="dsk.ptr", a="RM", b="T", ff=FF.OUTPUT, alu="INC", load="RM")
    asm.emit(r="dsk.ptr", a="RM", fetch=True, ff=FF.OUTPUT_MD, alu="INC", load="RM")
    asm.emit(
        r="dsk.cnt", a="RM", alu="DEC", load="RM", block=True,
        branch=("NONZERO", "disk.write_loop", "disk.write_done"),
    )
    asm.label("disk.write_done")
    asm.emit(b=io_address + 1, alu="B", load="T")
    asm.emit(b="T", ff=FF.IOADDRESS_B)
    asm.emit(r="dsk.st", b="RM", ff=FF.OUTPUT, block=True, goto="disk.idle")

    # --- idle: woken spuriously, just block again -------------------------------
    asm.label("disk.idle")
    asm.emit(block=True, goto="disk.idle")
