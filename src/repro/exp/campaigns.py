"""Predefined matrices: the grids the CLI and tests run by name.

Three shapes cover the harness's jobs:

* ``demo`` -- the acceptance grid: three gold workloads x three machine
  features x {clean, one seeded fault plan}.  Every clean cell proves
  three-tier cycle parity and its golden pin; every faulted cell runs
  supervised and must converge byte-identically to its clean
  counterpart.
* ``ablation`` -- clean cells only, wider: emulator workloads across
  the timing ablations plus the bypass kernels against the Model 0,
  regenerating the paper's section-7-style feature table from matrix
  cells instead of hand-wired report code.
* ``monte_carlo`` -- one workload, one clean reference cell, N faulted
  cells with derived seeds: the recovery-rate campaign.  ``--seeds
  1000`` turns it into the thousand-seed supervisor soak.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from .matrix import CLUSTER_WORKLOAD, ExperimentMatrix, derive_seed
from .scenario import ScenarioSpec

#: The demo fault plan template: one uncorrectable storage error plus
#: one spurious map fault early in the run -- each fatal unsupervised,
#: both recovered by rollback-and-replay.  ``last_cycle`` sits inside
#: every demo workload's span so the events always fire.
DEMO_FAULT_TEMPLATE: Dict[str, Any] = {
    "storage_uncorrectable": 1,
    "map_faults": 1,
    "first_cycle": 0,
    "last_cycle": 1500,
}

DEMO_WORKLOADS = ("mesa_loop_sum", "bcpl_loop_sum", "lisp_list_sum")
DEMO_VARIANTS = ("production", "small_cache", "ifu_slow")


def demo_matrix(seed: int = 11) -> ExperimentMatrix:
    """3 workloads x 3 configs x {clean, seeded faults}: 18 cells."""
    return ExperimentMatrix.cartesian(
        "demo",
        workloads=DEMO_WORKLOADS,
        variants=DEMO_VARIANTS,
        plans=(None, DEMO_FAULT_TEMPLATE),
        seed=seed,
    )


def ablation_matrix(seed: int = 7) -> ExperimentMatrix:
    """The section-7 feature grid, clean cells only.

    The emulator workloads sweep the timing ablations; the bypass
    kernels sweep production versus Model 0 (the unpadded kernel's
    Model 0 cell is excluded -- visibly -- because its microcode
    requires bypass paths, which is the paper's point).
    """
    emulators = ExperimentMatrix.cartesian(
        "ablation",
        workloads=("mesa_loop_sum", "bcpl_loop_sum", "lisp_list_sum",
                   "mesa_fib", "smalltalk_counter"),
        variants=("production", "small_cache", "ifu_slow", "grain3"),
        plans=(None,),
        seed=seed,
    )
    kernels = ExperimentMatrix.cartesian(
        "ablation_kernels",
        workloads=("bypass_kernel", "bypass_kernel_padded"),
        variants=("production", "model0"),
        plans=(None,),
        seed=seed,
    )
    return ExperimentMatrix(
        "ablation",
        emulators.cells + kernels.cells,
        seed=seed,
        excluded=emulators.excluded + kernels.excluded,
    )


def monte_carlo_matrix(
    seed: int = 97,
    seeds: int = 25,
    workload: str = "mesa_loop_sum",
    variant: str = "production",
    fault: Optional[Dict[str, Any]] = None,
) -> ExperimentMatrix:
    """One clean reference plus *seeds* faulted runs of one workload."""
    template = dict(fault or DEMO_FAULT_TEMPLATE)
    cells = [ScenarioSpec.clean(workload, variant)]
    cells.extend(
        ScenarioSpec.faulted(
            workload, variant, template,
            seed=derive_seed(seed, workload, variant, index),
        )
        for index in range(seeds)
    )
    return ExperimentMatrix("monte_carlo", cells, seed=seed)


#: Correctable-only storage faults inside the ring's active DMA window
#: (the controllers stream their buffers in the first ~2k cycles of a
#: node's run; later events would never meet a storage access).  ECC
#: corrects every hit, so the ring must still verify end to end.
CLUSTER_FAULT_TEMPLATE: Dict[str, Any] = {
    "storage_correctable": 3,
    "first_cycle": 0,
    "last_cycle": 2000,
}


def cluster_matrix(seed: int = 23) -> ExperimentMatrix:
    """Node-count sweep of the relay ring, plus one all-nodes-faulted cell.

    Built directly from :class:`ScenarioSpec` -- ``cartesian`` draws
    from WORKLOAD_DEFS, and the cluster workload is dispatched
    separately (it measures N machines, not one ``Workload``).
    """
    cells = [
        ScenarioSpec.clean(CLUSTER_WORKLOAD, "production", args={"nodes": n})
        for n in (1, 2, 4)
    ]
    cells.append(ScenarioSpec.faulted(
        CLUSTER_WORKLOAD, "production", CLUSTER_FAULT_TEMPLATE,
        seed=derive_seed(seed, CLUSTER_WORKLOAD, "production", 3),
        args={"nodes": 3},
    ))
    return ExperimentMatrix("cluster", cells, seed=seed)


#: Named matrices for ``python -m repro.exp run <name>`` and tests.
#: Each factory takes ``seed`` (and ``monte_carlo`` also ``seeds``).
MATRICES: Dict[str, Callable[..., ExperimentMatrix]] = {
    "demo": demo_matrix,
    "ablation": ablation_matrix,
    "monte_carlo": monte_carlo_matrix,
    "cluster": cluster_matrix,
}
