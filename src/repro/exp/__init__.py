"""Scenario-matrix experiment harness.

Workloads x machine configs x fault plans, fanned out over worker
processes that boot from shared snapshots, with pluggable evaluators
asserting the machine's invariants (three-tier cycle parity, golden
cycle pins, supervised-recovery convergence) on every cell and
canonical-JSON result artifacts that reproduce byte-identically.

Run one from the command line::

    python -m repro.exp run demo --workers 4 --output demo.json
"""

from .campaigns import (
    CLUSTER_FAULT_TEMPLATE,
    DEMO_FAULT_TEMPLATE,
    MATRICES,
    ablation_matrix,
    cluster_matrix,
    demo_matrix,
    monte_carlo_matrix,
)
from .configs import (
    CONFIG_VARIANTS,
    TIER_NAMES,
    ConfigVariant,
    config_hash,
    hash_payload,
    tier_configs,
    variant,
)
from .evaluate import (
    EVALUATORS,
    ClusterEvaluator,
    ConvergenceEvaluator,
    Evaluator,
    GoldenPinEvaluator,
    HoldAccountingEvaluator,
    TierParityEvaluator,
    default_evaluators,
)
from .kernels import bypass_kernel, bypass_kernel_padded
from .matrix import (
    CLUSTER_WORKLOAD,
    WORKLOAD_DEFS,
    ExperimentMatrix,
    WorkloadDef,
    clear_boot_cache,
    derive_seed,
    execute_cell,
)
from .results import (
    aggregate,
    canonical_dumps,
    diff_results,
    format_ablation_table,
    format_summary,
    load_result,
    save_result,
)
from .scenario import ScenarioSpec

__all__ = [
    "CLUSTER_FAULT_TEMPLATE",
    "CLUSTER_WORKLOAD",
    "CONFIG_VARIANTS",
    "ClusterEvaluator",
    "ConfigVariant",
    "ConvergenceEvaluator",
    "DEMO_FAULT_TEMPLATE",
    "EVALUATORS",
    "Evaluator",
    "ExperimentMatrix",
    "GoldenPinEvaluator",
    "HoldAccountingEvaluator",
    "MATRICES",
    "ScenarioSpec",
    "TIER_NAMES",
    "TierParityEvaluator",
    "WORKLOAD_DEFS",
    "WorkloadDef",
    "ablation_matrix",
    "aggregate",
    "bypass_kernel",
    "bypass_kernel_padded",
    "canonical_dumps",
    "clear_boot_cache",
    "cluster_matrix",
    "config_hash",
    "default_evaluators",
    "demo_matrix",
    "derive_seed",
    "diff_results",
    "execute_cell",
    "format_ablation_table",
    "format_summary",
    "hash_payload",
    "load_result",
    "monte_carlo_matrix",
    "save_result",
    "tier_configs",
    "variant",
]
