"""Scenario cells: one point of the workloads x configs x faults grid.

A :class:`ScenarioSpec` is *pure plain data* -- strings, ints, and
tuples -- so it is frozen, hashable, picklable across worker processes,
and serializes losslessly into the result artifact.  Its identity
(:attr:`ScenarioSpec.hash`, baked into :attr:`ScenarioSpec.cell_id`) is
a content hash over the canonical dict, so two specs describe the same
experiment exactly when their ids match, and the matrix artifact of a
rerun is byte-identical.

A cell is *clean* (``fault is None``): the workload runs under all
three execution tiers and the evaluators assert cycle parity and golden
pins.  Or it is *faulted*: the fault template plus the cell's seed
builds a :class:`~repro.fault.plan.FaultConfig`, the run goes through
the recovery supervisor, and the evaluators assert convergence to the
clean counterpart cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..fault.plan import FaultConfig
from .configs import hash_payload

#: Item-tuple encoding of a kwargs dict, sorted by key -- the hashable
#: form ScenarioSpec stores.
Items = Tuple[Tuple[str, Any], ...]


def _as_items(mapping: Optional[Dict[str, Any]]) -> Optional[Items]:
    if mapping is None:
        return None
    return tuple(sorted(mapping.items()))


@dataclass(frozen=True)
class ScenarioSpec:
    """One cell: (workload, config variant, fault plan or None, seed)."""

    workload: str
    variant: str
    #: Workload-builder keyword arguments (empty = the defaults the
    #: golden pins are taken at).
    args: Items = ()
    #: FaultConfig fields *without* the seed (the cell's own seed is
    #: substituted), or None for a clean cell.
    fault: Optional[Items] = None
    #: Seed for the fault plan; 0 and unused on clean cells.
    seed: int = 0
    max_cycles: int = 400_000
    checkpoint_interval: int = 400
    max_retries: int = 4

    @classmethod
    def clean(cls, workload: str, variant: str,
              args: Optional[Dict[str, Any]] = None, **kw) -> "ScenarioSpec":
        return cls(workload=workload, variant=variant,
                   args=_as_items(args) or (), **kw)

    @classmethod
    def faulted(cls, workload: str, variant: str, fault: Dict[str, Any],
                seed: int, args: Optional[Dict[str, Any]] = None,
                **kw) -> "ScenarioSpec":
        template = dict(fault)
        template.pop("seed", None)
        FaultConfig(seed=seed, **template)  # validate the fields early
        return cls(workload=workload, variant=variant,
                   args=_as_items(args) or (), fault=_as_items(template),
                   seed=seed, **kw)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form: what workers receive and artifacts store."""
        return {
            "workload": self.workload,
            "variant": self.variant,
            "args": dict(self.args),
            "fault": dict(self.fault) if self.fault is not None else None,
            "seed": self.seed,
            "max_cycles": self.max_cycles,
            "checkpoint_interval": self.checkpoint_interval,
            "max_retries": self.max_retries,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        return cls(
            workload=data["workload"],
            variant=data["variant"],
            args=_as_items(data.get("args") or {}) or (),
            fault=_as_items(data.get("fault")),
            seed=data.get("seed", 0),
            max_cycles=data.get("max_cycles", 400_000),
            checkpoint_interval=data.get("checkpoint_interval", 400),
            max_retries=data.get("max_retries", 4),
        )

    @property
    def hash(self) -> str:
        return hash_payload(self.to_dict())

    @property
    def is_faulted(self) -> bool:
        return self.fault is not None

    @property
    def pin_key(self) -> str:
        """The golden-pin lookup key: workload@variant[@args]."""
        key = f"{self.workload}@{self.variant}"
        if self.args:
            key += "@" + ",".join(f"{k}={v}" for k, v in self.args)
        return key

    @property
    def cell_id(self) -> str:
        """Human-readable unique id within (and across) matrices."""
        kind = "clean" if self.fault is None else f"fault-{self.seed}"
        return f"{self.pin_key}#{kind}#{self.hash[:8]}"

    @property
    def counterpart_key(self) -> str:
        """What a faulted cell's clean counterpart shares: the pin key."""
        return self.pin_key

    def fault_config(self) -> Optional[FaultConfig]:
        """Realize the seeded fault plan (None on clean cells)."""
        if self.fault is None:
            return None
        return FaultConfig(seed=self.seed, **dict(self.fault))
