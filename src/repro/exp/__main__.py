"""Command-line front end for the experiment matrix.

::

    python -m repro.exp list
    python -m repro.exp run demo --workers 4 --output demo.json
    python -m repro.exp run monte_carlo --seeds 100 --workers 8
    python -m repro.exp report demo.json
    python -m repro.exp diff demo.json demo-rerun.json

``run`` exits nonzero when any cell or check fails, so a matrix run is
usable directly as a CI gate.  Golden cycle pins are loaded from
``tests/goldens.json`` (the ``matrix_cycles`` section) when present;
``--goldens`` points elsewhere and ``--no-goldens`` skips the pins.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from .campaigns import MATRICES
from .configs import CONFIG_VARIANTS
from .matrix import WORKLOAD_DEFS
from .results import (
    canonical_dumps,
    diff_results,
    format_summary,
    load_result,
    save_result,
)


def _default_goldens_path() -> Optional[str]:
    """Find ``tests/goldens.json`` next to the repo or under the cwd."""
    here = os.path.dirname(os.path.abspath(__file__))
    candidates = [
        os.path.join(os.getcwd(), "tests", "goldens.json"),
        # src/repro/exp -> repo root
        os.path.normpath(os.path.join(here, "..", "..", "..",
                                      "tests", "goldens.json")),
    ]
    for path in candidates:
        if os.path.exists(path):
            return path
    return None


def _load_pins(path: Optional[str]) -> Optional[Dict[str, int]]:
    if path is None:
        return None
    with open(path) as f:
        data = json.load(f)
    return data.get("matrix_cycles", {})


def _cmd_list(args: argparse.Namespace) -> int:
    print("matrices:")
    for name in sorted(MATRICES):
        matrix = MATRICES[name]()
        print(f"  {name:<14} {len(matrix.cells)} cells, "
              f"{len(matrix.excluded)} excluded, hash {matrix.hash}")
    print("config variants:")
    for name in sorted(CONFIG_VARIANTS):
        v = CONFIG_VARIANTS[name]
        print(f"  {name:<14} {v.hash}  {v.description}")
    print("workloads:")
    for name in sorted(WORKLOAD_DEFS):
        wdef = WORKLOAD_DEFS[name]
        safe = "model0-safe" if wdef.model0_safe else "requires bypass"
        print(f"  {name:<22} {safe}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    factory = MATRICES.get(args.matrix)
    if factory is None:
        print(f"unknown matrix {args.matrix!r} "
              f"(known: {', '.join(sorted(MATRICES))})", file=sys.stderr)
        return 2
    kwargs: Dict[str, Any] = {"seed": args.seed}
    if args.matrix == "monte_carlo":
        kwargs["seeds"] = args.seeds
    matrix = factory(**kwargs)
    if args.describe:
        print(canonical_dumps(matrix.describe()), end="")
        return 0
    goldens_path = args.goldens
    if goldens_path is None and not args.no_goldens:
        goldens_path = _default_goldens_path()
    pins = None if args.no_goldens else _load_pins(goldens_path)
    result = matrix.run(workers=args.workers, goldens=pins)
    if args.output:
        save_result(result, args.output)
        print(f"wrote {args.output}")
    print(format_summary(result))
    return 0 if result["passed"] else 1


def _cmd_report(args: argparse.Namespace) -> int:
    result = load_result(args.path)
    print(format_summary(result))
    return 0 if result.get("passed") else 1


def _cmd_diff(args: argparse.Namespace) -> int:
    problems = diff_results(load_result(args.first), load_result(args.second))
    if not problems:
        print("results are behaviourally identical")
        return 0
    for line in problems:
        print(line)
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exp",
        description="Scenario-matrix experiment harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list matrices, variants, workloads")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run a named matrix")
    p_run.add_argument("matrix", help=f"one of: {', '.join(sorted(MATRICES))}")
    p_run.add_argument("--workers", type=int, default=0,
                       help="worker processes (<=1 runs inline)")
    p_run.add_argument("--seed", type=int, default=None,
                       help="matrix master seed (default: the matrix's own)")
    p_run.add_argument("--seeds", type=int, default=25,
                       help="fault-seed count for monte_carlo")
    p_run.add_argument("--output", "-o", help="write result artifact here")
    p_run.add_argument("--goldens", help="golden pins JSON "
                                         "(default: tests/goldens.json)")
    p_run.add_argument("--no-goldens", action="store_true",
                       help="skip golden-pin evaluation")
    p_run.add_argument("--describe", action="store_true",
                       help="print the matrix plan without running it")
    p_run.set_defaults(func=_cmd_run)

    p_report = sub.add_parser("report", help="summarize a result artifact")
    p_report.add_argument("path")
    p_report.set_defaults(func=_cmd_report)

    p_diff = sub.add_parser("diff", help="compare two result artifacts")
    p_diff.add_argument("first")
    p_diff.add_argument("second")
    p_diff.set_defaults(func=_cmd_diff)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "seed", None) is None and hasattr(args, "seed"):
        # let each matrix factory use its own default seed
        import inspect

        factory = MATRICES.get(getattr(args, "matrix", ""), None)
        if factory is not None:
            args.seed = inspect.signature(factory).parameters["seed"].default
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
