"""Result artifacts: canonical JSON, aggregation, tables, diffing.

A matrix result is written as **canonical JSON** -- sorted keys, fixed
indentation, trailing newline, and no wall-clock or host fields
anywhere -- so rerunning the same matrix with the same seed produces a
byte-identical file.  That byte-identity is the reproducibility
receipt: ``diff`` between two artifacts is empty exactly when the two
runs measured the same machine behaviour.

Aggregation turns per-cell measurements into matrix-level statistics:
pass/fail totals, and for fault campaigns the recovery-rate table
(recovered fraction, rollback/replay counts) grouped by workload and
variant -- the Monte-Carlo summary a thousand-seed campaign exists to
produce.  :func:`format_ablation_table` regenerates the section-7-style
workloads-by-features cycle table from any matrix run.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .evaluate import _pin_key


def canonical_dumps(result: Dict[str, Any]) -> str:
    """The artifact's bytes: sorted keys, indent 2, trailing newline."""
    return json.dumps(result, sort_keys=True, indent=2) + "\n"


def save_result(result: Dict[str, Any], path: str) -> None:
    with open(path, "w") as f:
        f.write(canonical_dumps(result))


def load_result(path: str) -> Dict[str, Any]:
    with open(path) as f:
        return json.load(f)


# --------------------------------------------------------------------------
# aggregation
# --------------------------------------------------------------------------

def aggregate(result: Dict[str, Any]) -> Dict[str, Any]:
    """Matrix-level statistics derived from the cells and checks."""
    cells = result["cells"]
    checks = result.get("checks", [])
    failed_cells = sorted(
        cell for cell, row in cells.items() if row["status"] != "ok"
    )
    campaign: Dict[str, Dict[str, Any]] = {}
    for cell_id in sorted(cells):
        row = cells[cell_id]
        if row["status"] != "ok" or row["measurements"]["kind"] != "faulted":
            continue
        m = row["measurements"]
        group = campaign.setdefault(_pin_key(row["spec"]), {
            "cells": 0, "recovered": 0, "faults_injected": 0,
            "rollbacks": 0, "replays": 0, "degrades": 0,
        })
        group["cells"] += 1
        group["recovered"] += int(m["recovered"])
        group["faults_injected"] += m["faults_injected"]
        for field in ("rollbacks", "replays", "degrades"):
            group[field] += m["recovery"][field]
    for group in campaign.values():
        group["recovery_rate"] = round(group["recovered"] / group["cells"], 4)
    return {
        "cells": len(cells),
        "failed_cells": len(failed_cells),
        "failed_cell_ids": failed_cells,
        "checks": len(checks),
        "checks_failed": sum(1 for c in checks if not c["passed"]),
        "campaign": campaign,
    }


# --------------------------------------------------------------------------
# report tables
# --------------------------------------------------------------------------

def _clean_cycles(result: Dict[str, Any]) -> Dict[str, Dict[str, int]]:
    """workload[@args] -> variant -> traced cycles, clean cells only."""
    table: Dict[str, Dict[str, int]] = {}
    for cell_id in sorted(result["cells"]):
        row = result["cells"][cell_id]
        if row["status"] != "ok" or row["measurements"]["kind"] != "clean":
            continue
        spec = row["spec"]
        workload = spec["workload"]
        if spec.get("args"):
            workload += "(" + ",".join(
                f"{k}={v}" for k, v in sorted(spec["args"].items())) + ")"
        table.setdefault(workload, {})[spec["variant"]] = (
            row["measurements"]["cycles"]
        )
    return table


def format_ablation_table(
    result: Dict[str, Any], baseline_variant: str = "production"
) -> str:
    """The section-7-style grid: workloads down, config variants across.

    Each cell shows simulated cycles, with the slowdown relative to the
    baseline variant in parentheses when both numbers exist.
    """
    table = _clean_cycles(result)
    if not table:
        return "(no clean cells in this result)"
    variants: List[str] = sorted(
        {v for row in table.values() for v in row},
        key=lambda v: (v != baseline_variant, v),
    )
    width = max(len(w) for w in table) + 2
    col = 18
    lines = ["ablation: simulated cycles by workload x machine feature",
             "-" * (width + col * len(variants))]
    lines.append(f"{'workload':<{width}}" +
                 "".join(f"{v:>{col}}" for v in variants))
    for workload in sorted(table):
        row = table[workload]
        cells = []
        base = row.get(baseline_variant)
        for v in variants:
            cycles = row.get(v)
            if cycles is None:
                cells.append(f"{'-':>{col}}")
            elif base and v != baseline_variant:
                cells.append(f"{cycles} ({cycles / base:.2f}x)".rjust(col))
            else:
                cells.append(f"{cycles}".rjust(col))
        lines.append(f"{workload:<{width}}" + "".join(cells))
    return "\n".join(lines)


def format_summary(result: Dict[str, Any]) -> str:
    """The CLI's post-run report: verdict, checks, campaign, ablation."""
    agg = result["aggregate"]
    matrix = result["matrix"]
    lines = [
        f"matrix {matrix['name']} (seed {matrix['seed']}, "
        f"hash {matrix['hash']}): "
        f"{agg['cells']} cells, {agg['failed_cells']} failed; "
        f"{agg['checks']} checks, {agg['checks_failed']} failed -- "
        f"{'PASSED' if result['passed'] else 'FAILED'}",
    ]
    if matrix.get("excluded"):
        for entry in matrix["excluded"]:
            lines.append(
                f"  excluded {entry['workload']} x {entry['variant']}: "
                f"{entry['reason']}"
            )
    for cell in agg["failed_cell_ids"]:
        lines.append(f"  FAILED CELL {cell}: {result['cells'][cell]['error']}")
    for check in result.get("checks", []):
        if not check["passed"]:
            lines.append(
                f"  FAILED CHECK {check['evaluator']}/{check['check']} "
                f"on {check['cell']}: {check['detail']}"
            )
    if agg["campaign"]:
        lines.append("")
        lines.append("fault campaign: recovery by workload x variant")
        key_width = max(len(k) for k in agg["campaign"]) + 2
        lines.append(
            f"{'cell group':<{key_width}}{'runs':>6}{'recovered':>11}"
            f"{'rate':>8}{'rollbacks':>11}{'replays':>9}{'degrades':>10}"
        )
        for key in sorted(agg["campaign"]):
            g = agg["campaign"][key]
            lines.append(
                f"{key:<{key_width}}{g['cells']:>6}{g['recovered']:>11}"
                f"{g['recovery_rate']:>8.2f}{g['rollbacks']:>11}"
                f"{g['replays']:>9}{g['degrades']:>10}"
            )
    ablation = format_ablation_table(result)
    if not ablation.startswith("("):
        lines.append("")
        lines.append(ablation)
    return "\n".join(lines)


# --------------------------------------------------------------------------
# diffing artifacts
# --------------------------------------------------------------------------

def diff_results(a: Dict[str, Any], b: Dict[str, Any]) -> List[str]:
    """Human-readable differences between two artifacts (empty = same).

    Compares identity, per-cell status/cycles/state hashes, and check
    verdicts -- the things that mean the simulated machines behaved
    differently, not formatting.
    """
    problems: List[str] = []
    if a["matrix"]["hash"] != b["matrix"]["hash"]:
        problems.append(
            f"matrix identity differs: {a['matrix']['hash']} vs "
            f"{b['matrix']['hash']}"
        )
    cells_a, cells_b = a["cells"], b["cells"]
    for cell in sorted(set(cells_a) | set(cells_b)):
        if cell not in cells_a:
            problems.append(f"{cell}: only in second result")
            continue
        if cell not in cells_b:
            problems.append(f"{cell}: only in first result")
            continue
        ra, rb = cells_a[cell], cells_b[cell]
        if ra["status"] != rb["status"]:
            problems.append(
                f"{cell}: status {ra['status']} vs {rb['status']}"
            )
            continue
        ma, mb = ra["measurements"], rb["measurements"]
        if ma is None or mb is None:
            continue
        for field in ("cycles", "arch_hash"):
            if ma.get(field) != mb.get(field):
                problems.append(
                    f"{cell}: {field} {ma.get(field)} vs {mb.get(field)}"
                )
    verdicts_a = {(c["cell"], c["evaluator"], c["check"]): c["passed"]
                  for c in a.get("checks", [])}
    verdicts_b = {(c["cell"], c["evaluator"], c["check"]): c["passed"]
                  for c in b.get("checks", [])}
    for key in sorted(set(verdicts_a) | set(verdicts_b)):
        if verdicts_a.get(key) != verdicts_b.get(key):
            problems.append(
                f"check {key[1]}/{key[2]} on {key[0]}: "
                f"{verdicts_a.get(key)} vs {verdicts_b.get(key)}"
            )
    return problems
