"""Hash-identified machine-configuration variants.

The paper's evaluation is a matrix of workloads against machine
features -- bypassing (section 5.6), IFU decode latency (section 4),
cache geometry (section 3), and the simulator's own execution tiers.
This module gives every point in that design space a stable identity:
a :class:`ConfigVariant` names a frozen
:class:`~repro.config.MachineConfig`, and :func:`config_hash` derives a
short content hash from the config's canonical JSON payload, so two
variants are interchangeable exactly when their hashes are equal.  The
hash is computed over *sorted* keys: re-ordering fields cannot change
it, while changing any field value must (``tests/test_exp_matrix.py``
pins both properties with Hypothesis).

The simulator's three execution tiers (interpretive, decoded-plan,
compiled-trace) are not variants of the machine being modelled but of
the simulator running it; :func:`tier_configs` derives the tier triple
from any base variant so the matrix can prove cycle parity across all
three on every cell.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

from ..config import MODEL0, PRODUCTION, STITCHWELD, MachineConfig

#: The tier names, slowest first, as used by corebench and the parity
#: evaluators.  Each maps to the (plan_cache_enabled,
#: trace_cache_enabled) pair that selects the cycle implementation.
TIER_NAMES: Tuple[str, ...] = ("interp", "plan", "traced")

_TIER_FLAGS = {
    "interp": (False, False),
    "plan": (True, False),
    "traced": (True, True),
}


def tier_configs(base: MachineConfig) -> Dict[str, MachineConfig]:
    """The three execution-tier configs derived from *base*.

    Only the simulator-speed knobs differ; the machine being modelled
    is identical, so all three must simulate the same cycle count.
    """
    return {
        name: dataclasses.replace(
            base, plan_cache_enabled=plan, trace_cache_enabled=trace
        )
        for name, (plan, trace) in _TIER_FLAGS.items()
    }


def hash_payload(payload: Mapping[str, Any]) -> str:
    """Short content hash of a plain-data mapping.

    Keys are sorted before hashing, so insertion order never matters;
    any value change produces a different digest.
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(text.encode()).hexdigest()[:12]


def config_signature_payload(config: MachineConfig) -> Dict[str, Any]:
    """The config as the plain dict the hash is computed over."""
    return dataclasses.asdict(config)


def config_hash(config: MachineConfig) -> str:
    """Stable 12-hex identity of a :class:`MachineConfig`."""
    return hash_payload(config_signature_payload(config))


@dataclass(frozen=True)
class ConfigVariant:
    """A named, hash-identified point in the machine design space."""

    name: str
    config: MachineConfig
    description: str = ""

    @property
    def hash(self) -> str:
        return config_hash(self.config)


#: The registry of named variants the scenario matrix draws from.
#: ``production`` is the paper's Model 1 multiwire machine; the others
#: each ablate one feature the paper discusses.  Variants that disable
#: bypassing break the (unpadded) emulator microcode by design -- the
#: matrix excludes such cells unless the workload declares itself
#: Model-0 safe (see ``repro.exp.matrix.WORKLOAD_DEFS``).
CONFIG_VARIANTS: Dict[str, ConfigVariant] = {
    variant.name: variant
    for variant in (
        ConfigVariant(
            "production", PRODUCTION,
            "Model 1, multiwire: the paper's production machine",
        ),
        ConfigVariant(
            "model0", MODEL0,
            "Model 0 ablation: bypass paths removed (section 5.6)",
        ),
        ConfigVariant(
            "stitchweld", STITCHWELD,
            "stitchwelded prototype: 50 ns cycle (section 6.4)",
        ),
        ConfigVariant(
            "small_cache",
            MachineConfig(cache_lines=32, cache_ways=1),
            "cache-geometry ablation: 32 direct-mapped lines",
        ),
        ConfigVariant(
            "ifu_slow",
            MachineConfig(ifu_decode_cycles=2),
            "IFU ablation: two-cycle byte decode",
        ),
        ConfigVariant(
            "grain3",
            MachineConfig(task_grain=3),
            "the rejected 3-instruction task grain (section 6.2.1)",
        ),
        ConfigVariant(
            "plan_only",
            MachineConfig(trace_cache_enabled=False),
            "simulator tier: decoded plans, no compiled traces",
        ),
        ConfigVariant(
            "interp",
            MachineConfig(plan_cache_enabled=False, trace_cache_enabled=False),
            "simulator tier: the interpretive reference",
        ),
    )
}


def variant(name: str) -> ConfigVariant:
    """Look up a registered variant, with a helpful error."""
    try:
        return CONFIG_VARIANTS[name]
    except KeyError:
        known = ", ".join(sorted(CONFIG_VARIANTS))
        raise KeyError(f"unknown config variant {name!r} (known: {known})") from None
