"""Pluggable evaluators: the invariants a matrix run must prove.

An :class:`Evaluator` inspects the assembled result (all cells'
measurements) and emits *checks* -- plain dicts
``{evaluator, cell, check, passed, detail}`` -- that land in the result
artifact and decide whether the matrix passed.  Running over the
assembled result rather than inside the workers keeps evaluation
deterministic and lets cross-cell invariants (a faulted cell converging
to its clean counterpart) pair cells without re-running anything.

The contract: ``evaluate(result)`` must be a pure function of the
result dict -- no wall clock, no machine access -- and must return one
check per invariant instance it judged (cells it does not apply to
produce no check).  ``name`` identifies the evaluator in artifacts and
CLI summaries.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from .configs import TIER_NAMES


def _ok_cells(result: Dict[str, Any]) -> Iterator[Tuple[str, Dict[str, Any]]]:
    for cell_id in sorted(result["cells"]):
        row = result["cells"][cell_id]
        if row["status"] == "ok":
            yield cell_id, row


class Evaluator:
    """Base class; subclasses set ``name`` and implement ``evaluate``."""

    name = "evaluator"

    def evaluate(self, result: Dict[str, Any]) -> List[Dict[str, Any]]:
        raise NotImplementedError

    def _check(self, cell: str, check: str, passed: bool,
               detail: str = "") -> Dict[str, Any]:
        return {"evaluator": self.name, "cell": cell, "check": check,
                "passed": bool(passed), "detail": detail}


class TierParityEvaluator(Evaluator):
    """Clean cells must simulate identically on all three tiers.

    Both the cycle count and the architectural-state hash must agree
    across interp/plan/traced -- the matrix-wide form of the
    differential parity suite.
    """

    name = "tier_parity"

    def evaluate(self, result):
        checks = []
        for cell_id, row in _ok_cells(result):
            m = row["measurements"]
            if m["kind"] != "clean":
                continue
            tiers = m["tiers"]
            cycles = {t: tiers[t]["cycles"] for t in TIER_NAMES}
            same_cycles = len(set(cycles.values())) == 1
            checks.append(self._check(
                cell_id, "tier_cycles_equal", same_cycles,
                ", ".join(f"{t}={c}" for t, c in cycles.items()),
            ))
            hashes = {t: tiers[t]["arch_hash"] for t in TIER_NAMES}
            same_state = len(set(hashes.values())) == 1
            checks.append(self._check(
                cell_id, "tier_state_identical", same_state,
                "" if same_state else
                ", ".join(f"{t}={h}" for t, h in hashes.items()),
            ))
        return checks


class GoldenPinEvaluator(Evaluator):
    """Cells with a pinned cycle count must reproduce it exactly.

    Pins come from ``tests/goldens.json`` (the ``matrix_cycles``
    section), keyed by the cell's pin key; cells without a pin are
    simply not judged.
    """

    name = "golden_pins"

    def __init__(self, pins: Optional[Dict[str, int]] = None) -> None:
        self.pins = dict(pins or {})

    def evaluate(self, result):
        checks = []
        for cell_id, row in _ok_cells(result):
            m = row["measurements"]
            if m["kind"] != "clean":
                continue
            pin = self.pins.get(_pin_key(row["spec"]))
            if pin is None:
                continue
            cycles = m["cycles"]
            checks.append(self._check(
                cell_id, "golden_cycles", cycles == pin,
                f"measured {cycles}, pinned {pin}",
            ))
        return checks


def _pin_key(spec: Dict[str, Any]) -> str:
    key = f"{spec['workload']}@{spec['variant']}"
    if spec.get("args"):
        key += "@" + ",".join(
            f"{k}={v}" for k, v in sorted(spec["args"].items())
        )
    return key


class ConvergenceEvaluator(Evaluator):
    """Supervised faulted cells must converge to their clean counterpart.

    Recovery's whole guarantee: the faulted run halts, verifies, and
    its architectural trajectory (hash and cycle count) is identical to
    the clean cell with the same workload, args, and variant.
    """

    name = "convergence"

    def evaluate(self, result):
        clean_by_key: Dict[str, Dict[str, Any]] = {}
        for cell_id, row in _ok_cells(result):
            if row["measurements"]["kind"] == "clean":
                clean_by_key[_pin_key(row["spec"])] = row["measurements"]
        checks = []
        for cell_id, row in _ok_cells(result):
            m = row["measurements"]
            if m["kind"] != "faulted":
                continue
            checks.append(self._check(
                cell_id, "recovered", m["recovered"],
                m["failure"] or
                f"rollbacks {m['recovery']['rollbacks']}, "
                f"replays {m['recovery']['replays']}",
            ))
            counterpart = clean_by_key.get(_pin_key(row["spec"]))
            if counterpart is None:
                checks.append(self._check(
                    cell_id, "converges_to_clean", False,
                    "no clean counterpart cell in this matrix",
                ))
                continue
            identical = (
                m["recovered"]
                and m["arch_hash"] == counterpart["arch_hash"]
                and m["cycles"] == counterpart["cycles"]
            )
            checks.append(self._check(
                cell_id, "converges_to_clean", identical,
                f"faulted {m['cycles']} cycles/{m['arch_hash']}, "
                f"clean {counterpart['cycles']} cycles/"
                f"{counterpart['arch_hash']}",
            ))
        return checks


class HoldAccountingEvaluator(Evaluator):
    """Counter-derived sanity: every held cycle has exactly one cause."""

    name = "hold_accounting"

    def evaluate(self, result):
        checks = []
        for cell_id, row in _ok_cells(result):
            metrics = row["measurements"].get("metrics")
            if not metrics:
                continue
            attributed = sum(metrics["hold_causes"].values())
            checks.append(self._check(
                cell_id, "hold_causes_sum", attributed == metrics["held_cycles"],
                f"attributed {attributed}, held {metrics['held_cycles']}",
            ))
        return checks


class ClusterEvaluator(Evaluator):
    """Cluster cells must finish, verify, and actually move packets.

    The ring workload's end-to-end guarantee: the origin's payload came
    back incremented once per relay on every lap (``ring_verified``),
    and the fabric delivered traffic at all (``packets_flowed`` -- a
    verified ring with zero deliveries would mean the check never
    exercised the wire).
    """

    name = "cluster"

    def evaluate(self, result):
        checks = []
        for cell_id, row in _ok_cells(result):
            m = row["measurements"]
            if m["kind"] != "cluster":
                continue
            checks.append(self._check(
                cell_id, "ring_verified", m["verified"],
                "; ".join(m["failures"]) if m["failures"] else
                f"{m['laps']} lap(s) over {m['nodes']} node(s) "
                f"in {m['epochs']} epochs",
            ))
            checks.append(self._check(
                cell_id, "packets_flowed", m["packets_delivered"] > 0,
                f"{m['packets_delivered']} packet(s) delivered",
            ))
        return checks


#: Evaluator registry for the CLI's ``--evaluators`` selection.
EVALUATORS = {
    TierParityEvaluator.name: TierParityEvaluator,
    GoldenPinEvaluator.name: GoldenPinEvaluator,
    ConvergenceEvaluator.name: ConvergenceEvaluator,
    HoldAccountingEvaluator.name: HoldAccountingEvaluator,
    ClusterEvaluator.name: ClusterEvaluator,
}


def default_evaluators(goldens: Optional[Dict[str, int]] = None) -> List[Evaluator]:
    """The standard panel; golden pins only when pins were provided."""
    panel: List[Evaluator] = [
        TierParityEvaluator(),
        ConvergenceEvaluator(),
        HoldAccountingEvaluator(),
        ClusterEvaluator(),
    ]
    if goldens:
        panel.append(GoldenPinEvaluator(goldens))
    return panel
