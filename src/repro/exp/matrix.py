"""The experiment matrix: cartesian product, fan-out, measurement.

An :class:`ExperimentMatrix` owns a list of :class:`~repro.exp.scenario.
ScenarioSpec` cells -- usually the cartesian product of gold workloads
x config variants x fault plans (:meth:`ExperimentMatrix.cartesian`),
with incompatible pairs (unpadded emulator microcode on the bypass-less
Model 0) excluded explicitly, never silently: the exclusions are part
of the matrix identity and the artifact.

Running the matrix fans cells out across worker processes.  Cell
execution is a thin client of the session service
(:mod:`repro.service.session`), which owns the per-process *boot
cache*: the first cell needing a (workload, args, config) machine
builds and boots it once, and every later run of that pair starts from
a :meth:`~repro.core.processor.Processor.fork` of the pristine boot --
a shared-snapshot seeded fork, so microcode assembly is paid once per
worker, not once per cell.  A cell that raises is recorded as a
*failed cell* in the result, never a hung or aborted matrix.

Measurements are exclusively simulated quantities (cycles, counters,
architectural-state hashes) -- no wall clock, no host names -- so a
rerun of the same matrix with the same seed assembles a byte-identical
result artifact regardless of worker count or scheduling.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core.counters import HOLD_CAUSE_NAMES
from ..errors import DoradoError
from ..fault.plan import FaultConfig
from ..perf.workloads import ALL_WORKLOADS, Workload
from ..service.session import Session, arch_hash, clear_boot_cache
from .configs import tier_configs, variant
from .kernels import bypass_kernel, bypass_kernel_padded
from .scenario import ScenarioSpec

__all__ = [
    "CLUSTER_WORKLOAD",
    "ExperimentMatrix",
    "WORKLOAD_DEFS",
    "WorkloadDef",
    "clear_boot_cache",  # re-export: the cache moved to repro.service
    "derive_seed",
    "execute_cell",
]


# --------------------------------------------------------------------------
# the workload registry
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkloadDef:
    """A gold workload the matrix can schedule.

    ``model0_safe`` declares that the workload's microcode pads every
    dependent use-after-write and therefore runs correctly without
    bypass paths; the emulator workloads are written in the Model 1
    idiom and are not.
    """

    name: str
    build: Callable[..., Workload]
    model0_safe: bool = False


WORKLOAD_DEFS: Dict[str, WorkloadDef] = {
    **{
        name: WorkloadDef(name, factory, model0_safe=False)
        for name, factory in ALL_WORKLOADS.items()
    },
    "bypass_kernel": WorkloadDef("bypass_kernel", bypass_kernel,
                                 model0_safe=False),
    "bypass_kernel_padded": WorkloadDef(
        "bypass_kernel_padded", bypass_kernel_padded, model0_safe=True
    ),
}


def derive_seed(master: int, *parts: Any) -> int:
    """A stable per-cell seed from the matrix seed and the cell's place."""
    text = "/".join([str(master), *(str(p) for p in parts)])
    digest = hashlib.sha256(text.encode()).digest()
    return (int.from_bytes(digest[:4], "big") & 0x7FFFFFFF) or 1


# --------------------------------------------------------------------------
# cell execution (sessions over the service's shared boot cache)
# --------------------------------------------------------------------------

def _counter_metrics(counters) -> Dict[str, Any]:
    """The deterministic counter-derived metrics a cell records."""
    return {
        "instructions": counters.instructions,
        "held_cycles": counters.held_cycles,
        "hold_causes": dict(zip(HOLD_CAUSE_NAMES, counters.hold_causes)),
        "cache_hits": counters.cache_hits,
        "cache_misses": counters.cache_misses,
        "task_switches": counters.task_switches,
    }


def _execute_clean(spec: ScenarioSpec) -> Dict[str, Any]:
    """Run the cell under all three execution tiers; record each."""
    base = variant(spec.variant).config
    tiers: Dict[str, Any] = {}
    metrics: Dict[str, Any] = {}
    for tier, config in tier_configs(base).items():
        session = Session.build(
            spec.workload, args=dict(spec.args), config=config,
            supervise=False,
        )
        cycles = session.run(max_cycles=spec.max_cycles)
        tiers[tier] = {
            "cycles": cycles,
            "arch_hash": session.arch_hash(),
        }
        if tier == "traced":
            metrics = _counter_metrics(session.cpu.counters)
    return {"kind": "clean", "tiers": tiers, "metrics": metrics,
            "cycles": tiers["traced"]["cycles"],
            "arch_hash": tiers["traced"]["arch_hash"]}


def _execute_faulted(spec: ScenarioSpec) -> Dict[str, Any]:
    """Run the seeded fault plan under the recovery supervisor.

    An unrecovered run (supervisor retry exhaustion, livelock, wrong
    answer) is a *measurement* -- ``recovered: false`` with the failure
    recorded -- not a failed cell: Monte-Carlo campaigns count these.
    """
    base = variant(spec.variant).config
    config = dataclasses.replace(base, fault_injection=spec.fault_config())
    session = Session.build(
        spec.workload, args=dict(spec.args), config=config,
        supervise=True,
        checkpoint_interval=spec.checkpoint_interval,
        max_retries=spec.max_retries,
    )
    cpu = session.cpu
    failure: Optional[str] = None
    try:
        session.run_slice(spec.max_cycles)
        if not cpu.halted:
            failure = f"did not halt within {spec.max_cycles} cycles"
        elif not session.verify():
            failure = "halted but failed verification"
    except DoradoError as exc:
        failure = f"{type(exc).__name__}: {exc}"
    counters = cpu.counters
    return {
        "kind": "faulted",
        "recovered": failure is None,
        "failure": failure,
        "cycles": counters.cycles,
        "arch_hash": arch_hash(cpu),
        "faults_injected": counters.faults_injected,
        "ecc_uncorrected": counters.ecc_uncorrected,
        "recovery": {
            "checks_failed": counters.checks_failed,
            "rollbacks": counters.rollbacks,
            "replays": counters.replays,
            "degrades": counters.degrades,
        },
        "metrics": _counter_metrics(counters),
    }


#: The cluster demo workload: not in WORKLOAD_DEFS because a cluster
#: cell measures N machines plus a fabric, not one Workload object.
CLUSTER_WORKLOAD = "cluster_ring"


def _execute_cluster(spec: ScenarioSpec) -> Dict[str, Any]:
    """Run a relay-ring cluster cell: N nodes, optional per-node faults.

    A faulted cluster cell arms *every* node with its own fault plan,
    each seeded from the cell seed and the node index -- so the sweep
    exercises N distinct deterministic fault streams at once.  The
    recorded ``cluster_hash`` covers the canonical cluster snapshot
    (all machines, programs, and the fabric), which is what makes the
    cell a replay check: same seed, same hash.
    """
    from ..cluster import build_ring_cluster, ring_epoch_budget

    args = dict(spec.args)
    nodes = args.get("nodes", 3)
    laps = args.get("laps", 2)
    payload_words = args.get("payload_words", 16)
    fault_plans = None
    if spec.is_faulted:
        template = dict(spec.fault)
        fault_plans = {
            index: FaultConfig(
                seed=derive_seed(spec.seed, "node", index), **template
            )
            for index in range(nodes)
        }
    cluster = build_ring_cluster(
        nodes,
        laps=laps,
        payload_words=payload_words,
        seed=spec.seed or 11,
        config=variant(spec.variant).config,
        fault_plans=fault_plans,
    )
    epochs = cluster.run(max_epochs=ring_epoch_budget(nodes, laps))
    report = cluster.report()
    origin = cluster.nodes[0].program
    metrics: Dict[str, Any] = {
        "instructions": 0,
        "held_cycles": 0,
        "hold_causes": {name: 0 for name in HOLD_CAUSE_NAMES},
        "cache_hits": 0,
        "cache_misses": 0,
        "task_switches": 0,
    }
    for node in cluster.nodes:
        node_metrics = _counter_metrics(node.cpu.counters)
        for key, value in node_metrics.items():
            if key == "hold_causes":
                for cause, count in value.items():
                    metrics["hold_causes"][cause] += count
            else:
                metrics[key] += value
    cluster_hash = hashlib.sha256(
        cluster.snapshot().to_json().encode()
    ).hexdigest()[:16]
    return {
        "kind": "cluster",
        "nodes": nodes,
        "laps": laps,
        "epochs": epochs,
        "done": bool(origin.done),
        "verified": bool(origin.done and origin.verified),
        "failures": list(origin.failures),
        "cycles": report["total_cycles"],
        "cluster_hash": cluster_hash,
        "packets_delivered": report["fabric"]["packets_delivered"],
        "faults_injected": sum(
            node.cpu.counters.faults_injected for node in cluster.nodes
        ),
        "metrics": metrics,
    }


def execute_cell(spec: ScenarioSpec) -> Dict[str, Any]:
    """Measure one cell (raises on broken specs; see ``_cell_worker``)."""
    if spec.workload == CLUSTER_WORKLOAD:
        return _execute_cluster(spec)
    if spec.workload not in WORKLOAD_DEFS:
        known = ", ".join(sorted(WORKLOAD_DEFS))
        raise KeyError(f"unknown workload {spec.workload!r} (known: {known})")
    if spec.is_faulted:
        return _execute_faulted(spec)
    return _execute_clean(spec)


def _cell_worker(spec_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Process-pool entry point: never raises, never hangs the matrix."""
    spec = ScenarioSpec.from_dict(spec_dict)
    row: Dict[str, Any] = {"cell": spec.cell_id, "spec": spec.to_dict()}
    try:
        row["measurements"] = execute_cell(spec)
        row["status"] = "ok"
        row["error"] = None
    except Exception as exc:  # a failed cell, not a failed matrix
        row["measurements"] = None
        row["status"] = "failed"
        row["error"] = f"{type(exc).__name__}: {exc}"
    return row


# --------------------------------------------------------------------------
# the matrix
# --------------------------------------------------------------------------

class ExperimentMatrix:
    """A named, seeded, hash-identified set of scenario cells."""

    def __init__(
        self,
        name: str,
        cells: Sequence[ScenarioSpec],
        *,
        seed: int = 0,
        excluded: Sequence[Dict[str, str]] = (),
    ) -> None:
        self.name = name
        self.cells = list(cells)
        self.seed = seed
        self.excluded = list(excluded)
        ids = [spec.cell_id for spec in self.cells]
        duplicates = {i for i in ids if ids.count(i) > 1}
        if duplicates:
            raise ValueError(f"duplicate cell ids: {sorted(duplicates)}")

    @classmethod
    def cartesian(
        cls,
        name: str,
        workloads: Sequence[str],
        variants: Sequence[str],
        plans: Sequence[Optional[Dict[str, Any]]] = (None,),
        *,
        seed: int = 0,
        spec_kw: Optional[Dict[str, Any]] = None,
    ) -> "ExperimentMatrix":
        """The full product, minus explicitly-excluded incompatible pairs.

        *plans* entries are either ``None`` (a clean cell) or a
        FaultConfig field template (seedless; each faulted cell gets a
        seed derived from the matrix seed and its coordinates).
        """
        kw = spec_kw or {}
        cells: List[ScenarioSpec] = []
        excluded: List[Dict[str, str]] = []
        for wname in workloads:
            wdef = WORKLOAD_DEFS[wname]
            for vname in variants:
                vcfg = variant(vname).config
                if not vcfg.bypass_enabled and not wdef.model0_safe:
                    excluded.append({
                        "workload": wname, "variant": vname,
                        "reason": "workload microcode requires bypass paths "
                                  "(not Model-0 safe)",
                    })
                    continue
                for index, plan in enumerate(plans):
                    if plan is None:
                        cells.append(ScenarioSpec.clean(wname, vname, **kw))
                    else:
                        cells.append(ScenarioSpec.faulted(
                            wname, vname, plan,
                            seed=derive_seed(seed, wname, vname, index), **kw
                        ))
        return cls(name, cells, seed=seed, excluded=excluded)

    @property
    def hash(self) -> str:
        """Identity of the whole grid: name, seed, every cell, exclusions."""
        from .configs import hash_payload

        return hash_payload({
            "name": self.name,
            "seed": self.seed,
            "cells": [spec.to_dict() for spec in self.cells],
            "excluded": self.excluded,
        })

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "hash": self.hash,
            "cells": [spec.to_dict() | {"cell": spec.cell_id}
                      for spec in sorted(self.cells, key=lambda s: s.cell_id)],
            "excluded": self.excluded,
        }

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(
        self,
        *,
        workers: int = 0,
        evaluators: Optional[Sequence] = None,
        goldens: Optional[Dict[str, int]] = None,
    ) -> Dict[str, Any]:
        """Execute every cell and assemble the evaluated result artifact.

        ``workers <= 1`` runs inline (same code path the workers run);
        more fans out over a process pool.  The result is independent
        of *workers* byte-for-byte.
        """
        spec_dicts = [spec.to_dict() for spec in self.cells]
        if workers > 1 and len(self.cells) > 1:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            with ctx.Pool(min(workers, len(self.cells))) as pool:
                rows = pool.map(_cell_worker, spec_dicts)
        else:
            rows = [_cell_worker(d) for d in spec_dicts]
        rows.sort(key=lambda r: r["cell"])

        from .evaluate import default_evaluators
        from .results import aggregate

        result: Dict[str, Any] = {
            "format": 1,
            "matrix": self.describe(),
            "cells": {row["cell"]: {k: v for k, v in row.items()
                                    if k != "cell"}
                      for row in rows},
        }
        active = list(evaluators) if evaluators is not None else (
            default_evaluators(goldens=goldens)
        )
        checks: List[Dict[str, Any]] = []
        for evaluator in active:
            checks.extend(evaluator.evaluate(result))
        checks.sort(key=lambda c: (c["cell"], c["evaluator"], c["check"]))
        result["matrix"]["evaluators"] = sorted(e.name for e in active)
        result["checks"] = checks
        result["aggregate"] = aggregate(result)
        result["passed"] = (
            result["aggregate"]["failed_cells"] == 0
            and result["aggregate"]["checks_failed"] == 0
        )
        return result
