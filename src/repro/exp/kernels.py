"""Microcode kernel workloads for ablations the emulators cannot run.

The byte-code emulator workloads assume the Model 1's bypass paths:
their microcode reads registers written by the immediately preceding
instruction, which on the Model 0 silently delivers stale values
(section 5.6).  The bypass ablation therefore needs its own workloads,
written the way Model 0 microcoders had to write: a *padded* kernel
inserts an independent instruction after every dependent write and runs
correctly on both machines, while the *unpadded* kernel is the Model 1
idiom that the matrix may only pair with bypass-enabled variants.

Both kernels compute the same dependent-accumulate chain
``acc = 2*acc + 1`` and trace the result, so a stale read anywhere in
the chain changes the traced value and fails verification -- the
oracle is architectural, not just "it halted".
"""

from __future__ import annotations

from ..asm.assembler import Assembler
from ..config import PRODUCTION, MachineConfig
from ..core.functions import FF
from ..core.processor import Processor
from ..perf.workloads import Workload


class KernelContext:
    """The slice of :class:`~repro.emulators.isa.EmulatorContext` a raw
    microcode workload needs: the machine, run, and halt status.  The
    ``cpu`` attribute is read late everywhere (including the verify
    closures), so the matrix runner can swap in a
    :meth:`~repro.core.processor.Processor.fork` of a cached boot.
    """

    def __init__(self, cpu: Processor) -> None:
        self.cpu = cpu

    def run(self, max_cycles: int = 2_000_000) -> int:
        return self.cpu.run(max_cycles)

    @property
    def halted(self) -> bool:
        return self.cpu.halted


def _build_bypass_kernel(
    iters: int, padded: bool, config: MachineConfig, name: str
) -> Workload:
    asm = Assembler(config)
    asm.register("acc", 1)
    asm.emit(r="acc", b=0, alu="B", load="RM")
    asm.emit(count=iters - 1)
    asm.label("loop")
    if padded:
        # The loop-top spacer: the branch target must not read the RM
        # value the loop-closing INC just wrote.
        asm.emit()
    asm.emit(r="acc", a="RM", b="RM", alu="ADD", load="RM")  # acc += acc
    if padded:
        asm.emit()  # the spacer Model 0 microcoders had to insert
    asm.emit(r="acc", a="RM", alu="INC", load="RM",
             branch=("COUNT", "loop", "done"))
    asm.label("done")
    if padded:
        asm.emit()  # TRACE reads the INC's result one instruction later
    asm.emit(r="acc", b="RM", ff=FF.TRACE)
    asm.halt()
    cpu = Processor(config)
    cpu.load_image(asm.assemble())
    ctx = KernelContext(cpu)

    acc = 0
    for _ in range(iters):
        acc = (2 * acc + 1) & 0xFFFF
    expected = acc
    return Workload(name, ctx, lambda: ctx.cpu.console.trace == [expected])


def bypass_kernel(
    iters: int = 12, config: MachineConfig = PRODUCTION
) -> Workload:
    """The Model 1 idiom: back-to-back dependent writes, no padding.

    Only correct on bypass-enabled configs; the matrix must not pair it
    with the Model 0.
    """
    return _build_bypass_kernel(iters, padded=False, config=config,
                                name="bypass_kernel")


def bypass_kernel_padded(
    iters: int = 12, config: MachineConfig = PRODUCTION
) -> Workload:
    """The Model 0 idiom: every dependent use-after-write is padded.

    Correct on both machines; paired with ``bypass_kernel`` on the
    production variant it reproduces the paper's E8 ablation from
    matrix cells.
    """
    return _build_bypass_kernel(iters, padded=True, config=config,
                                name="bypass_kernel_padded")
