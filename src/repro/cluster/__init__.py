"""A deterministic multi-Dorado cluster (DESIGN.md section 5.8).

N complete machines -- each a fork of one booted template -- exchange
packets through their network controllers over a shared
:class:`Fabric`, advanced in conservative lockstep epochs so every run
replays byte-identically from one seed, independent of host scheduling
and worker count.  The cluster snapshot is a vector of per-machine
``MachineState`` payloads plus the fabric, in the repo's canonical
JSON.

Quickstart::

    from repro.cluster import build_ring_cluster, ring_epoch_budget
    cluster = build_ring_cluster(3, laps=2)
    cluster.run(max_epochs=ring_epoch_budget(3, 2))
    assert cluster.nodes[0].program.verified
    print(cluster.snapshot().to_json())

or from the shell::

    python -m repro.cluster run --nodes 3 --laps 2 --save-state ring.json
    python -m repro.cluster bench --nodes 1,2,4 --output BENCH_cluster.json
"""

from .cluster import (
    CLUSTER_FORMAT_VERSION,
    Cluster,
    ClusterState,
    Node,
    arm_fault_plan,
)
from .fabric import Fabric, Packet
from .programs import (
    RX_BUFFER_VA,
    TX_BUFFER_VA,
    RingOrigin,
    RingRelay,
    build_ring_cluster,
    build_ring_template,
    ring_epoch_budget,
    ring_payload,
)

__all__ = [
    "CLUSTER_FORMAT_VERSION",
    "Cluster",
    "ClusterState",
    "Fabric",
    "Node",
    "Packet",
    "RX_BUFFER_VA",
    "RingOrigin",
    "RingRelay",
    "TX_BUFFER_VA",
    "arm_fault_plan",
    "build_ring_cluster",
    "build_ring_template",
    "ring_epoch_budget",
    "ring_payload",
]
