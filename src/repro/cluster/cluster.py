"""N full Dorados in conservative lockstep (DESIGN.md section 5.8).

A :class:`Cluster` owns N complete machines -- each one a
:meth:`~repro.core.processor.Processor.fork` of a single booted
template -- plus the :class:`~repro.cluster.fabric.Fabric` between
their network controllers and one *program* per node (the host-software
state machine that arms transfers and harvests completed ones).

Time advances in **epochs**.  One epoch is, in this exact order:

1. every packet due this epoch is injected into its destination's
   network controller rx queue;
2. every node runs exactly ``epoch_cycles`` machine cycles;
3. every node's program is stepped, in node-index order, and any
   packets it harvested off the tx wire are handed to the fabric.

Because the fabric's hop latency is at least one epoch, nothing a node
sends can reach a peer inside the epoch that sent it -- so the nodes
within an epoch are causally independent and may be simulated in any
order, on any number of worker processes, with byte-identical results.
The worker mode exploits exactly that: forked workers own disjoint node
subsets, the coordinator keeps the fabric and performs all sends in
node-index order, and the cluster snapshot comes out the same whether
``workers`` was 1 or N.

The cluster-wide snapshot (:class:`ClusterState`) is a vector of
:class:`~repro.state.MachineState` payloads plus the fabric and program
state, serialized with the repo's canonical JSON -- save -> load ->
save round-trips byte-identically, and restore/fork work mid-run.
"""

from __future__ import annotations

import copy
import dataclasses
import multiprocessing
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core.counters import HOLD_CAUSE_NAMES
from ..errors import ConfigError, StateError
from ..fault.injector import FaultInjector
from ..fault.plan import FaultConfig, InjectionPlan
from ..io.network import NetworkController
from ..mem.pipeline import FAULT_STORAGE
from ..state import MachineState, canonical_json, parse_canonical_json
from .fabric import Fabric

#: Version stamp of the cluster snapshot layout; the per-node payloads
#: carry their own STATE_FORMAT_VERSION and are checked by restore().
CLUSTER_FORMAT_VERSION = 1


def arm_fault_plan(cpu, fault_config: FaultConfig) -> None:
    """Give a forked machine its own seeded fault plan, in place.

    ``Processor.fork()`` clones the clean template, so a per-node plan
    cannot ride in through the constructor; instead the node's config
    is replaced (fault plans are config, so snapshots of the armed node
    refuse machines armed differently) and the injector is wired
    exactly as :class:`~repro.mem.pipeline.MemorySystem` wires one at
    construction: clock on the memory pipeline, uncorrectable errors
    into the storage fault latch, the ECC filter onto storage.
    """
    config = dataclasses.replace(cpu.config, fault_injection=fault_config)
    cpu.config = config
    memory = cpu.memory
    memory.config = config
    injector = FaultInjector(InjectionPlan.from_config(fault_config), cpu.counters)
    injector.bind(
        clock=lambda: memory.now,
        on_uncorrectable=lambda: memory._fault(FAULT_STORAGE),
    )
    memory.injector = injector
    memory.storage.ecc = injector.ecc
    # Traces compiled before arming would bypass the new ECC filter.
    cpu._traces.invalidate_all()


class Node:
    """One cluster member: a machine, its network controller, its program."""

    def __init__(self, index: int, cpu, program) -> None:
        self.index = index
        self.cpu = cpu
        self.program = program
        nets = [d for d in cpu.devices if isinstance(d, NetworkController)]
        if len(nets) != 1:
            raise ConfigError(
                f"cluster node {index} needs exactly one NetworkController "
                f"(found {len(nets)})"
            )
        self.net = nets[0]


class ClusterState:
    """The whole cluster as plain data: epoch, fabric, N machines, programs."""

    def __init__(self, data: Dict[str, Any]) -> None:
        self.data = data

    @property
    def epoch(self) -> int:
        return self.data["epoch"]

    @property
    def num_nodes(self) -> int:
        return len(self.data["nodes"])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClusterState) and self.data == other.data

    def __repr__(self) -> str:
        return f"ClusterState(nodes={self.num_nodes}, epoch={self.epoch})"

    def to_json(self) -> str:
        """Canonical JSON: the same cluster state always yields the same bytes."""
        return canonical_json(self.data)

    @classmethod
    def from_json(cls, text: str) -> "ClusterState":
        data = parse_canonical_json(text)
        if not isinstance(data, dict) or "cluster_version" not in data:
            raise StateError("cluster-state JSON lacks a cluster_version field")
        return cls(data)

    def save(self, path) -> None:
        with open(path, "w") as f:
            f.write(self.to_json())
            f.write("\n")

    @classmethod
    def load(cls, path) -> "ClusterState":
        with open(path) as f:
            return cls.from_json(f.read())


class Cluster:
    """N machines, one fabric, advanced in conservative lockstep epochs."""

    def __init__(self, nodes: Sequence[Node], fabric: Fabric,
                 epoch_cycles: int = 800) -> None:
        if len(nodes) != fabric.num_nodes:
            raise ConfigError(
                f"{len(nodes)} nodes but the fabric was built for "
                f"{fabric.num_nodes}"
            )
        if epoch_cycles < 1:
            raise ConfigError("epoch_cycles must be positive")
        self.nodes = list(nodes)
        self.fabric = fabric
        self.epoch_cycles = epoch_cycles
        self.epoch = 0

    @classmethod
    def from_template(
        cls,
        template,
        num_nodes: int,
        programs: Sequence,
        *,
        epoch_cycles: int = 800,
        hop_latency: int = 1,
        links: Optional[Dict[int, int]] = None,
        fault_plans: Optional[Dict[int, FaultConfig]] = None,
    ) -> "Cluster":
        """Build N nodes by forking one booted *template* machine.

        *programs* supplies one program per node; *fault_plans*
        optionally maps node indices to per-node seeded
        :class:`~repro.fault.plan.FaultConfig` plans (every other node
        stays clean).
        """
        if len(programs) != num_nodes:
            raise ConfigError(f"{num_nodes} nodes need {num_nodes} programs, "
                              f"got {len(programs)}")
        plans = fault_plans or {}
        for index in plans:
            if not 0 <= index < num_nodes:
                raise ConfigError(f"fault plan for nonexistent node {index}")
        nodes = []
        for index in range(num_nodes):
            cpu = template.fork()
            plan = plans.get(index)
            if plan is not None:
                arm_fault_plan(cpu, plan)
            nodes.append(Node(index, cpu, programs[index]))
        return cls(nodes, Fabric(num_nodes, hop_latency, links),
                   epoch_cycles=epoch_cycles)

    # ------------------------------------------------------------------
    # the lockstep epoch
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True when every non-passive program has finished."""
        active = [n for n in self.nodes if not n.program.passive]
        return bool(active) and all(n.program.done for n in active)

    def _deliver_due(self) -> None:
        for packet in self.fabric.due(self.epoch):
            self.nodes[packet.dst].net.inject_packet(list(packet.words))

    def run_epoch(self) -> None:
        """Advance the whole cluster by exactly one epoch, inline."""
        self._deliver_due()
        for node in self.nodes:
            node.cpu.run(self.epoch_cycles)
        for node in self.nodes:
            for words in node.program.step(node):
                self.fabric.send(node.index, words, self.epoch)
        self.epoch += 1

    def run(self, max_epochs: int, workers: int = 1) -> int:
        """Run until done or *max_epochs*; returns the epochs advanced.

        ``workers > 1`` fans the nodes out over forked worker
        processes; the result is byte-identical to the inline run.
        """
        if (
            workers > 1
            and len(self.nodes) > 1
            and "fork" in multiprocessing.get_all_start_methods()
        ):
            return self._run_forked(max_epochs, workers)
        start = self.epoch
        while not self.done and self.epoch - start < max_epochs:
            self.run_epoch()
        return self.epoch - start

    # ------------------------------------------------------------------
    # fork-based fan-out
    # ------------------------------------------------------------------

    def _run_forked(self, max_epochs: int, workers: int) -> int:
        """The epoch loop with nodes spread over forked workers.

        Workers own disjoint node subsets (round-robin by index) and
        inherit them through fork.  Per epoch, the coordinator ships
        each worker its nodes' due packets, the worker runs its nodes
        and steps their programs, and the coordinator performs the
        resulting ``fabric.send`` calls in node-index order -- the one
        total order the fabric ever sees, regardless of which worker
        answered first.  After the loop, each worker ships its nodes'
        snapshots back and the coordinator restores them into its own
        (stale since the fork) node objects.
        """
        workers = min(workers, len(self.nodes))
        owned = {
            w: [i for i in range(len(self.nodes)) if i % workers == w]
            for w in range(workers)
        }
        ctx = multiprocessing.get_context("fork")
        pipes = []
        procs = []
        for w in range(workers):
            parent_end, child_end = ctx.Pipe()
            proc = ctx.Process(
                target=_cluster_worker, args=(child_end, self, owned[w]),
                daemon=True,
            )
            proc.start()
            child_end.close()
            pipes.append(parent_end)
            procs.append(proc)

        done_flags = {n.index: bool(n.program.done) for n in self.nodes}
        passive = {n.index: bool(n.program.passive) for n in self.nodes}
        active = [i for i, p in passive.items() if not p]
        start = self.epoch
        try:
            while self.epoch - start < max_epochs:
                if active and all(done_flags[i] for i in active):
                    break
                deliver: Dict[int, List[List[int]]] = {}
                for packet in self.fabric.due(self.epoch):
                    deliver.setdefault(packet.dst, []).append(list(packet.words))
                for w in range(workers):
                    pipes[w].send({
                        "cmd": "epoch",
                        "deliver": [(i, deliver.get(i, [])) for i in owned[w]],
                    })
                sends: List = []
                for w in range(workers):
                    reply = pipes[w].recv()
                    sends.extend(reply["sent"])
                    done_flags.update(reply["done"])
                for index, packets in sorted(sends):
                    for words in packets:
                        self.fabric.send(index, words, self.epoch)
                self.epoch += 1
            for pipe in pipes:
                pipe.send({"cmd": "collect"})
            for pipe in pipes:
                for index, machine_data, program_state in pipe.recv():
                    node = self.nodes[index]
                    node.cpu.restore(MachineState(machine_data))
                    node.program.load_state(program_state)
        finally:
            for pipe in pipes:
                try:
                    pipe.send({"cmd": "exit"})
                    pipe.close()
                except (BrokenPipeError, OSError):
                    pass
            for proc in procs:
                proc.join(timeout=30)
                if proc.is_alive():
                    proc.terminate()
        return self.epoch - start

    # ------------------------------------------------------------------
    # snapshot / restore / fork
    # ------------------------------------------------------------------

    def snapshot(self) -> ClusterState:
        return ClusterState({
            "cluster_version": CLUSTER_FORMAT_VERSION,
            "epoch": self.epoch,
            "epoch_cycles": self.epoch_cycles,
            "fabric": self.fabric.state_dict(),
            "nodes": [node.cpu.snapshot().data for node in self.nodes],
            "programs": [
                {"kind": node.program.kind, "state": node.program.state_dict()}
                for node in self.nodes
            ],
        })

    def restore(self, state: ClusterState) -> None:
        data = state.data if isinstance(state, ClusterState) else state
        if data["cluster_version"] != CLUSTER_FORMAT_VERSION:
            raise StateError(
                f"cluster snapshot format v{data['cluster_version']} != "
                f"supported v{CLUSTER_FORMAT_VERSION}"
            )
        if len(data["nodes"]) != len(self.nodes):
            raise StateError(
                f"snapshot has {len(data['nodes'])} nodes; "
                f"this cluster has {len(self.nodes)}"
            )
        for node, entry in zip(self.nodes, data["programs"]):
            if entry["kind"] != node.program.kind:
                raise StateError(
                    f"node {node.index} runs program {node.program.kind!r}; "
                    f"snapshot has {entry['kind']!r}"
                )
        self.fabric.load_state(data["fabric"])
        self.epoch = data["epoch"]
        self.epoch_cycles = data["epoch_cycles"]
        for node, machine_data, entry in zip(
            self.nodes, data["nodes"], data["programs"]
        ):
            node.cpu.restore(MachineState(machine_data))
            node.program.load_state(entry["state"])

    def fork(self) -> "Cluster":
        """A fully independent copy of the whole cluster, mid-run."""
        clone = Cluster(
            [
                Node(n.index, n.cpu.fork(), copy.deepcopy(n.program))
                for n in self.nodes
            ],
            copy.deepcopy(self.fabric),
            epoch_cycles=self.epoch_cycles,
        )
        clone.epoch = self.epoch
        return clone

    # ------------------------------------------------------------------
    # the cluster report
    # ------------------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        """Per-node instrumentation rolled into one plain-data report."""
        per_node = []
        for node in self.nodes:
            c = node.cpu.counters
            per_node.append({
                "node": node.index,
                "cycles": c.cycles,
                "instructions": c.instructions,
                "held_cycles": c.held_cycles,
                "hold_causes": dict(zip(HOLD_CAUSE_NAMES, c.hold_causes)),
                "task_switches": c.task_switches,
                "network_task_cycles": c.task_cycles[node.net.task],
                "packets_received": node.net.packets_received,
                "slowio_words_in": c.slowio_words_in,
                "slowio_words_out": c.slowio_words_out,
                "faults_injected": c.faults_injected,
                "program": {
                    "kind": node.program.kind,
                    "passive": bool(node.program.passive),
                    "done": bool(node.program.done),
                },
            })
        return {
            "epoch": self.epoch,
            "epoch_cycles": self.epoch_cycles,
            "total_cycles": sum(entry["cycles"] for entry in per_node),
            "fabric": {
                "packets_sent": self.fabric.packets_sent,
                "words_sent": self.fabric.words_sent,
                "packets_delivered": self.fabric.packets_delivered,
                "in_flight": len(self.fabric.in_flight),
            },
            "nodes": per_node,
        }


def _cluster_worker(conn, cluster: Cluster, indices: List[int]) -> None:
    """Worker-process loop: epochs for an owned node subset.

    Runs in a forked child, so ``cluster`` is the parent's object graph
    at fork time; only the owned nodes are ever touched here, and their
    final state travels back as snapshot data on "collect".
    """
    nodes = [cluster.nodes[i] for i in indices]
    while True:
        msg = conn.recv()
        cmd = msg["cmd"]
        if cmd == "epoch":
            for index, packets in msg["deliver"]:
                net = cluster.nodes[index].net
                for words in packets:
                    net.inject_packet(list(words))
            for node in nodes:
                node.cpu.run(cluster.epoch_cycles)
            sent = []
            done = {}
            for node in nodes:
                outs = node.program.step(node)
                sent.append((node.index, [list(w) for w in outs]))
                done[node.index] = bool(node.program.done)
            conn.send({"sent": sent, "done": done})
        elif cmd == "collect":
            conn.send([
                (node.index, node.cpu.snapshot().data, node.program.state_dict())
                for node in nodes
            ])
        else:  # "exit"
            conn.close()
            return
