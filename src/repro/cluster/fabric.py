"""The deterministic packet fabric between Dorados.

The paper's machine hung off "an interface to a high bandwidth
communication network" (section 2); this module is the wire between N
simulated machines.  A :class:`Fabric` moves whole packets -- the word
lists a :class:`~repro.io.network.NetworkController` put on its tx wire
-- to the receiving node's rx queue, with a fixed latency measured in
*lockstep epochs* (DESIGN.md section 5.8), never in host time.

Everything is plain data and total orders: packets carry a global
sequence number, delivery sorts on (deliver_epoch, seq), and the
coordinator performs every ``send``/``due`` call in node-index order,
so the fabric's behaviour is a pure function of the cluster's seed --
independent of worker count, host scheduling, or hash ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError, StateError
from ..types import word


@dataclass(frozen=True)
class Packet:
    """One packet in flight: plain data, totally ordered by ``seq``."""

    seq: int
    src: int
    dst: int
    words: Tuple[int, ...]
    sent_epoch: int
    deliver_epoch: int

    def state_dict(self) -> dict:
        return {
            "seq": self.seq,
            "src": self.src,
            "dst": self.dst,
            "words": list(self.words),
            "sent_epoch": self.sent_epoch,
            "deliver_epoch": self.deliver_epoch,
        }

    @classmethod
    def from_state(cls, state: dict) -> "Packet":
        return cls(
            seq=state["seq"],
            src=state["src"],
            dst=state["dst"],
            words=tuple(state["words"]),
            sent_epoch=state["sent_epoch"],
            deliver_epoch=state["deliver_epoch"],
        )


class Fabric:
    """Point-to-point links with a fixed per-hop epoch latency.

    ``links`` maps each source node to the destination its tx wire
    feeds; the default is the unidirectional ring ``i -> (i+1) % n``
    (node 0's wire loops back to itself when ``n == 1``).  The hop
    latency must be at least one epoch: a packet sent during epoch E is
    delivered at the top of epoch ``E + hop_latency``, which is what
    makes the lockstep *conservative* -- nothing sent in an epoch can
    influence any node until every node has finished that epoch.
    """

    def __init__(
        self,
        num_nodes: int,
        hop_latency: int = 1,
        links: Optional[Dict[int, int]] = None,
    ) -> None:
        if num_nodes < 1:
            raise ConfigError("a fabric needs at least one node")
        if hop_latency < 1:
            raise ConfigError(
                "hop latency below one epoch would let a packet arrive "
                "inside the epoch that sent it (not conservative)"
            )
        self.num_nodes = num_nodes
        self.hop_latency = hop_latency
        if links is None:
            links = {i: (i + 1) % num_nodes for i in range(num_nodes)}
        for src, dst in links.items():
            if not (0 <= src < num_nodes and 0 <= dst < num_nodes):
                raise ConfigError(f"link {src}->{dst} names a node outside 0..{num_nodes - 1}")
        self.links = dict(links)
        self._in_flight: List[Packet] = []
        self._next_seq = 0
        self.packets_sent = 0
        self.words_sent = 0
        self.packets_delivered = 0

    # --- the wire -----------------------------------------------------------

    def send(self, src: int, words: List[int], epoch: int) -> Packet:
        """Accept a packet from *src*'s tx wire during *epoch*."""
        dst = self.links.get(src)
        if dst is None:
            raise ConfigError(f"node {src} has no outgoing link")
        packet = Packet(
            seq=self._next_seq,
            src=src,
            dst=dst,
            words=tuple(word(w) for w in words),
            sent_epoch=epoch,
            deliver_epoch=epoch + self.hop_latency,
        )
        self._next_seq += 1
        self.packets_sent += 1
        self.words_sent += len(packet.words)
        self._in_flight.append(packet)
        return packet

    def due(self, epoch: int) -> List[Packet]:
        """Pop every packet deliverable at the top of *epoch*, in order."""
        arrived = sorted(
            (p for p in self._in_flight if p.deliver_epoch <= epoch),
            key=lambda p: (p.deliver_epoch, p.seq),
        )
        if arrived:
            delivered = {p.seq for p in arrived}
            self._in_flight = [p for p in self._in_flight if p.seq not in delivered]
            self.packets_delivered += len(arrived)
        return arrived

    @property
    def in_flight(self) -> List[Packet]:
        return sorted(self._in_flight, key=lambda p: p.seq)

    # --- snapshot protocol (DESIGN.md section 5.4) ----------------------------

    def state_dict(self) -> dict:
        return {
            "num_nodes": self.num_nodes,
            "hop_latency": self.hop_latency,
            "links": dict(self.links),
            "in_flight": [p.state_dict() for p in self.in_flight],
            "next_seq": self._next_seq,
            "packets_sent": self.packets_sent,
            "words_sent": self.words_sent,
            "packets_delivered": self.packets_delivered,
        }

    def load_state(self, state: dict) -> None:
        if state["num_nodes"] != self.num_nodes:
            raise StateError(
                f"fabric snapshot is for {state['num_nodes']} nodes; "
                f"this fabric has {self.num_nodes}"
            )
        if state["hop_latency"] != self.hop_latency or dict(state["links"]) != self.links:
            raise StateError("fabric snapshot was taken on a different topology")
        self._in_flight = [Packet.from_state(p) for p in state["in_flight"]]
        self._next_seq = state["next_seq"]
        self.packets_sent = state["packets_sent"]
        self.words_sent = state["words_sent"]
        self.packets_delivered = state["packets_delivered"]
