"""Cluster scaling measurement: aggregate simulated cycles/s vs node count.

The companion to BENCH_core.json one layer up: where that file records
single-machine interpreter/plan/trace throughput, this one records how
the lockstep coordinator scales as nodes are added -- total simulated
cycles across all nodes divided by the wall-clock of the whole run,
for the demo relay ring at N = 1, 2, 4 (by default).
"""

from __future__ import annotations

import platform
import sys
import time
from typing import Any, Dict, Sequence

from .programs import build_ring_cluster, build_ring_template, ring_epoch_budget


def run_scaling(
    node_counts: Sequence[int] = (1, 2, 4),
    *,
    laps: int = 2,
    payload_words: int = 16,
    seed: int = 11,
    epoch_cycles: int = 800,
) -> Dict[str, Any]:
    """Time the relay ring at each node count; returns the report dict."""
    template = build_ring_template()
    rows = []
    for nodes in node_counts:
        cluster = build_ring_cluster(
            nodes,
            laps=laps,
            payload_words=payload_words,
            seed=seed,
            epoch_cycles=epoch_cycles,
            template=template,
        )
        budget = ring_epoch_budget(nodes, laps)
        start = time.perf_counter()
        epochs = cluster.run(max_epochs=budget)
        seconds = time.perf_counter() - start
        report = cluster.report()
        origin = cluster.nodes[0].program
        rows.append({
            "nodes": nodes,
            "epochs": epochs,
            "total_cycles": report["total_cycles"],
            "seconds": round(seconds, 6),
            "cycles_per_second": (
                round(report["total_cycles"] / seconds) if seconds > 0 else 0
            ),
            "packets_delivered": report["fabric"]["packets_delivered"],
            "verified": bool(origin.done and origin.verified),
        })
    return {
        "benchmark": "repro.cluster ring scaling",
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "workload": {
            "laps": laps,
            "payload_words": payload_words,
            "seed": seed,
            "epoch_cycles": epoch_cycles,
        },
        "scaling": rows,
    }
