"""Distributed demo workloads: host-software state machines per node.

A cluster *program* is the simulated host software driving one node's
network controller -- the role the Alto/Dorado OS played above the
paper's microcoded interface.  Programs are stepped once per lockstep
epoch, after the node has run its ``epoch_cycles``; a step inspects the
controller, arms transfers, harvests completed transmissions, and
returns the packets to put on the fabric.  Everything a program does is
a pure function of device state, so runs replay byte-identically.

The demo workload is a **relay ring**: node 0 (:class:`RingOrigin`)
transmits a seeded payload around the ring; every other node
(:class:`RingRelay`) receives it, increments each word, and forwards
it.  After one lap the origin receives its own payload incremented once
per relay -- an end-to-end check that every DMA buffer, microcode loop,
fabric hop, and controller handshake did its job, ``laps`` times over.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..asm.assembler import Assembler
from ..config import PRODUCTION
from ..core.processor import Processor
from ..errors import StateError
from ..fault.plan import FaultConfig
from ..io.network import NetworkController, network_microcode
from ..types import word
from .cluster import Cluster, Node

#: Per-node DMA buffers (identity-mapped low memory, clear of the
#: microcode scratch pages the device tests use).
RX_BUFFER_VA = 0x5000
TX_BUFFER_VA = 0x5800


def ring_payload(seed: int, lap: int, count: int) -> List[int]:
    """The deterministic payload the origin transmits on *lap*.

    A seeded LCG (same multiplier/increment family as the fault plan's
    stream generator), so the expected words at any hop are computable
    without replaying the cluster.
    """
    state = (seed * 0x9E3779B1 + lap * 0x85EBCA6B + 1) & 0xFFFFFFFF
    words = []
    for _ in range(count):
        state = (state * 1103515245 + 12345) & 0xFFFFFFFF
        words.append((state >> 8) & 0xFFFF)
    return words


def _transfer_complete(net: NetworkController) -> bool:
    # tx passes through tx_drain before idle; done alone is not enough.
    return net.done and net.mode == "idle"


class RingOrigin:
    """Node 0's program: transmit a payload, await its return, verify.

    Phases: ``arm_tx`` (write the lap's payload into the tx buffer and
    start the transmit) -> ``tx_wait`` (on completion, hand the wire
    words to the fabric and arm the receive) -> ``rx_wait`` (on
    completion, check the payload came back incremented once per
    relay); repeat for ``laps`` laps.
    """

    kind = "ring_origin"
    passive = False

    def __init__(self, payload_words: int = 16, laps: int = 2,
                 seed: int = 11, relays: int = 0) -> None:
        self.payload_words = payload_words
        self.laps = laps
        self.seed = seed
        self.relays = relays
        self.phase = "arm_tx"
        self.lap = 0
        self.done = False
        self.verified = True
        self.failures: List[str] = []
        self.packets_sent = 0
        self.packets_received = 0

    def step(self, node: Node) -> List[List[int]]:
        net, cpu = node.net, node.cpu
        out: List[List[int]] = []
        if self.phase == "arm_tx":
            payload = ring_payload(self.seed, self.lap, self.payload_words)
            for i, value in enumerate(payload):
                cpu.memory.debug_write(TX_BUFFER_VA + i, value)
            net.begin_transmit(cpu, buffer_va=TX_BUFFER_VA,
                               packet_words=self.payload_words)
            self.phase = "tx_wait"
        elif self.phase == "tx_wait":
            if _transfer_complete(net):
                out.append(list(net.tx_words))
                self.packets_sent += 1
                net.begin_receive(cpu, buffer_va=RX_BUFFER_VA,
                                  packet_words=self.payload_words)
                self.phase = "rx_wait"
        elif self.phase == "rx_wait":
            if _transfer_complete(net):
                self.packets_received += 1
                got = [cpu.memory.debug_read(RX_BUFFER_VA + i)
                       for i in range(self.payload_words)]
                expect = [word(v + self.relays) for v in
                          ring_payload(self.seed, self.lap, self.payload_words)]
                if got != expect:
                    self.verified = False
                    self.failures.append(
                        f"lap {self.lap}: got {got[:4]}... expected {expect[:4]}..."
                    )
                self.lap += 1
                if self.lap >= self.laps:
                    self.done = True
                    self.phase = "finished"
                else:
                    self.phase = "arm_tx"
        return out

    def state_dict(self) -> Dict[str, Any]:
        return {
            "payload_words": self.payload_words,
            "laps": self.laps,
            "seed": self.seed,
            "relays": self.relays,
            "phase": self.phase,
            "lap": self.lap,
            "done": self.done,
            "verified": self.verified,
            "failures": list(self.failures),
            "packets_sent": self.packets_sent,
            "packets_received": self.packets_received,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        for field in ("payload_words", "laps", "seed", "relays"):
            if state[field] != getattr(self, field):
                raise StateError(
                    f"ring-origin snapshot has {field}={state[field]}; "
                    f"this program was built with {getattr(self, field)}"
                )
        self.phase = state["phase"]
        self.lap = state["lap"]
        self.done = bool(state["done"])
        self.verified = bool(state["verified"])
        self.failures = list(state["failures"])
        self.packets_sent = state["packets_sent"]
        self.packets_received = state["packets_received"]


class RingRelay:
    """A relay node's program: receive, increment every word, forward.

    Passive -- it relays forever and never reports done; the cluster
    finishes when the origin does.
    """

    kind = "ring_relay"
    passive = True
    done = False

    def __init__(self, payload_words: int = 16, increment: int = 1) -> None:
        self.payload_words = payload_words
        self.increment = increment
        self.phase = "arm_rx"
        self.packets_received = 0
        self.packets_sent = 0

    def step(self, node: Node) -> List[List[int]]:
        net, cpu = node.net, node.cpu
        out: List[List[int]] = []
        if self.phase == "arm_rx":
            net.begin_receive(cpu, buffer_va=RX_BUFFER_VA,
                              packet_words=self.payload_words)
            self.phase = "rx_wait"
        elif self.phase == "rx_wait":
            if _transfer_complete(net):
                self.packets_received += 1
                for i in range(self.payload_words):
                    value = cpu.memory.debug_read(RX_BUFFER_VA + i)
                    cpu.memory.debug_write(TX_BUFFER_VA + i,
                                           word(value + self.increment))
                net.begin_transmit(cpu, buffer_va=TX_BUFFER_VA,
                                   packet_words=self.payload_words)
                self.phase = "tx_wait"
        elif self.phase == "tx_wait":
            if _transfer_complete(net):
                out.append(list(net.tx_words))
                self.packets_sent += 1
                net.begin_receive(cpu, buffer_va=RX_BUFFER_VA,
                                  packet_words=self.payload_words)
                self.phase = "rx_wait"
        return out

    def state_dict(self) -> Dict[str, Any]:
        return {
            "payload_words": self.payload_words,
            "increment": self.increment,
            "phase": self.phase,
            "packets_received": self.packets_received,
            "packets_sent": self.packets_sent,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        for field in ("payload_words", "increment"):
            if state[field] != getattr(self, field):
                raise StateError(
                    f"ring-relay snapshot has {field}={state[field]}; "
                    f"this program was built with {getattr(self, field)}"
                )
        self.phase = state["phase"]
        self.packets_received = state["packets_received"]
        self.packets_sent = state["packets_sent"]


# --------------------------------------------------------------------------
# cluster builders
# --------------------------------------------------------------------------

def build_ring_template(config=PRODUCTION) -> Processor:
    """One booted machine with the network task, to fork N nodes from."""
    asm = Assembler(config)
    asm.emit(idle=True)
    network_microcode(asm)
    cpu = Processor(config)
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map()
    cpu.attach_device(NetworkController())
    return cpu


def build_ring_cluster(
    num_nodes: int,
    *,
    laps: int = 2,
    payload_words: int = 16,
    seed: int = 11,
    config=PRODUCTION,
    epoch_cycles: int = 800,
    hop_latency: int = 1,
    fault_plans: Optional[Dict[int, FaultConfig]] = None,
    template: Optional[Processor] = None,
) -> Cluster:
    """The demo relay ring: origin at node 0, relays the rest of the way.

    Pass a prebuilt *template* to amortize the boot cost across many
    clusters (tests and benchmarks do); it is only forked, never run.
    """
    if template is None:
        template = build_ring_template(config)
    relays = num_nodes - 1
    programs: List[Any] = [
        RingOrigin(payload_words=payload_words, laps=laps, seed=seed,
                   relays=relays)
    ]
    programs.extend(
        RingRelay(payload_words=payload_words) for _ in range(relays)
    )
    return Cluster.from_template(
        template,
        num_nodes,
        programs,
        epoch_cycles=epoch_cycles,
        hop_latency=hop_latency,
        fault_plans=fault_plans,
    )


def ring_epoch_budget(num_nodes: int, laps: int) -> int:
    """A comfortable epoch ceiling for a ring run (proportional, not tight)."""
    return 40 + 8 * num_nodes * laps
