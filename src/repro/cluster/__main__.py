"""Command-line driver for the cluster: ``python -m repro.cluster``.

``run`` executes the demo relay ring and prints the cluster report;
``--save-state`` writes the final canonical-JSON cluster snapshot,
which CI compares byte-for-byte across worker counts.  ``bench`` runs
the scaling sweep and writes BENCH_cluster.json-shaped output.
"""

from __future__ import annotations

import argparse
import json
import sys

from .bench import run_scaling
from .programs import build_ring_cluster, ring_epoch_budget


def _cmd_run(args: argparse.Namespace) -> int:
    cluster = build_ring_cluster(
        args.nodes,
        laps=args.laps,
        payload_words=args.payload_words,
        seed=args.seed,
        epoch_cycles=args.epoch_cycles,
        hop_latency=args.hop_latency,
    )
    budget = args.max_epochs or ring_epoch_budget(args.nodes, args.laps)
    cluster.run(max_epochs=budget, workers=args.workers)
    report = cluster.report()
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.save_state:
        cluster.snapshot().save(args.save_state)
        print(f"cluster state -> {args.save_state}", file=sys.stderr)
    origin = cluster.nodes[0].program
    if not (origin.done and origin.verified):
        print(
            f"ring NOT verified: done={origin.done} verified={origin.verified} "
            f"failures={origin.failures}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    node_counts = tuple(int(n) for n in args.nodes.split(","))
    result = run_scaling(
        node_counts,
        laps=args.laps,
        payload_words=args.payload_words,
        epoch_cycles=args.epoch_cycles,
    )
    text = json.dumps(result, indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
        print(f"benchmark -> {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    return 0 if all(row["verified"] for row in result["scaling"]) else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="deterministic multi-Dorado cluster driver",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run the demo relay ring")
    run_p.add_argument("--nodes", type=int, default=3)
    run_p.add_argument("--laps", type=int, default=2)
    run_p.add_argument("--payload-words", type=int, default=16)
    run_p.add_argument("--seed", type=int, default=11)
    run_p.add_argument("--epoch-cycles", type=int, default=800)
    run_p.add_argument("--hop-latency", type=int, default=1)
    run_p.add_argument("--workers", type=int, default=1)
    run_p.add_argument("--max-epochs", type=int, default=0,
                       help="override the computed epoch budget")
    run_p.add_argument("--save-state", default=None,
                       help="write the final canonical-JSON cluster snapshot")
    run_p.set_defaults(func=_cmd_run)

    bench_p = sub.add_parser("bench", help="scaling sweep (cycles/s vs nodes)")
    bench_p.add_argument("--nodes", default="1,2,4",
                         help="comma-separated node counts")
    bench_p.add_argument("--laps", type=int, default=2)
    bench_p.add_argument("--payload-words", type=int, default=16)
    bench_p.add_argument("--epoch-cycles", type=int, default=800)
    bench_p.add_argument("--output", default=None,
                         help="write JSON here instead of stdout")
    bench_p.set_defaults(func=_cmd_bench)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
