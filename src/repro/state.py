"""Machine-wide snapshot, restore, fork, and serialization.

Section 6.3 of the paper enumerates the Dorado's architectural state
precisely: RM/T/COUNT/Q/SHIFTCTL/MEMBASE, a TPC per task, the writable
control store, and the cache/map/storage contents.  Every stateful
subsystem in this simulator declares exactly that state through one
protocol -- ``state_dict() -> dict`` returning plain data (ints, bools,
strings, lists, dicts; no object references, no aliasing of live
containers) and ``load_state(dict)`` copying it back in.  Derived
mechanism -- the execution-plan cache, instrumentation hooks, decode
tables, compiled ALU closures -- is explicitly excluded and rebuilt
when needed.

This module assembles the per-subsystem dicts into a versioned
:class:`MachineState` (see :meth:`repro.core.processor.Processor.
snapshot` / ``restore`` / ``fork``) and serializes it as **canonical
JSON**: keys sorted, integer dict keys stringified symmetrically, and
long integer arrays run-length encoded.  Canonicalization is applied
identically on every save, so save -> load -> save round-trips
byte-identically; tests and the warm-start benchmark rely on that.

What is architectural state and what is mechanism, and how the format
is versioned, is documented in DESIGN.md section 5.4.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional

from .errors import StateError

#: Version stamp written into every MachineState.  Bump whenever a
#: subsystem's state_dict layout changes incompatibly; restore refuses
#: snapshots from a different version rather than misinterpreting them.
STATE_FORMAT_VERSION = 2

#: Marker key for run-length-encoded integer arrays in canonical JSON.
_RLE_KEY = "__rle__"
#: Integer lists at least this long are RLE-coded (storage images and
#: register files compress enormously; short lists stay readable).
_RLE_MIN = 64


def config_signature(config) -> Dict[str, Any]:
    """The config as plain data, for snapshot/machine compatibility.

    Two machines with equal signatures have identical geometry, timing,
    and fault plan, so a snapshot taken on one loads on the other.
    """
    return dataclasses.asdict(config)


# --------------------------------------------------------------------------
# canonical JSON: deterministic bytes in, identical bytes out
# --------------------------------------------------------------------------

def _rle_encode(values: List[int]) -> List[List[int]]:
    pairs: List[List[int]] = []
    for value in values:
        if pairs and pairs[-1][0] == value:
            pairs[-1][1] += 1
        else:
            pairs.append([value, 1])
    return pairs


def _rle_decode(pairs: List[List[int]]) -> List[int]:
    values: List[int] = []
    for value, count in pairs:
        values.extend([value] * count)
    return values


def _canonical(obj: Any) -> Any:
    """Normalize for serialization: string keys, RLE'd int arrays.

    Applied before every dump, whether the data came from live
    ``state_dict`` calls (int keys) or from a previous load (string
    keys already), so the emitted bytes are identical either way.
    """
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in obj.items()}
    if isinstance(obj, list):
        if len(obj) >= _RLE_MIN and all(type(v) is int for v in obj):
            return {_RLE_KEY: _rle_encode(obj)}
        return [_canonical(v) for v in obj]
    return obj


def _parse_key(key: Any) -> Any:
    """Undo the stringification of integer dict keys.

    State dicts key on either identifiers (field names) or integers
    (addresses, pages, tasks); no identifier is all digits, so the
    digit test is unambiguous.
    """
    if isinstance(key, str) and (
        key.isdigit() or (key.startswith("-") and key[1:].isdigit())
    ):
        return int(key)
    return key


def _revive(obj: Any) -> Any:
    """Invert :func:`_canonical` after a JSON parse."""
    if isinstance(obj, dict):
        if set(obj) == {_RLE_KEY}:
            return _rle_decode(obj[_RLE_KEY])
        return {_parse_key(k): _revive(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_revive(v) for v in obj]
    return obj


def canonical_json(data: Any) -> str:
    """Canonical JSON of a plain-data tree: same data, same bytes.

    The one serialization the repo's byte-identity guarantees are built
    on -- sorted stringified keys, RLE-coded integer arrays, no
    whitespace.  :class:`MachineState` uses it for single machines and
    the cluster layer (:mod:`repro.cluster`) for vectors of them.
    """
    return json.dumps(_canonical(data), sort_keys=True, separators=(",", ":"))


def parse_canonical_json(text: str) -> Any:
    """Invert :func:`canonical_json` (raises StateError on bad input)."""
    try:
        raw = json.loads(text)
    except ValueError as exc:
        raise StateError(f"malformed canonical-state JSON: {exc}") from exc
    return _revive(raw)


# --------------------------------------------------------------------------
# the assembled machine state
# --------------------------------------------------------------------------

class MachineState:
    """One machine's complete architectural state, as plain data.

    Produced by :meth:`Processor.snapshot` and consumed by
    :meth:`Processor.restore`; :attr:`data` is a nested dict with the
    sections ``version``, ``config``, ``im``, ``core``, ``mem``,
    ``ifu``, ``io`` (one entry per attached device, in attachment
    order), and ``fault`` (None when fault injection is off).
    """

    def __init__(self, data: Dict[str, Any]) -> None:
        self.data = data

    @property
    def version(self) -> int:
        return self.data["version"]

    @property
    def config(self) -> Dict[str, Any]:
        return self.data["config"]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MachineState) and self.data == other.data

    def __repr__(self) -> str:
        cycles = self.data.get("core", {}).get("now", "?")
        return f"MachineState(version={self.version}, cycle={cycles})"

    # --- serialization ----------------------------------------------------

    def to_json(self) -> str:
        """Canonical JSON: the same state always yields the same bytes."""
        return canonical_json(self.data)

    @classmethod
    def from_json(cls, text: str) -> "MachineState":
        try:
            raw = json.loads(text)
        except ValueError as exc:
            raise StateError(f"malformed machine-state JSON: {exc}") from exc
        if not isinstance(raw, dict) or "version" not in raw:
            raise StateError("machine-state JSON lacks a version field")
        return cls(_revive(raw))

    def save(self, path) -> None:
        """Write the canonical serialization (plus a trailing newline)."""
        with open(path, "w") as f:
            f.write(self.to_json())
            f.write("\n")

    @classmethod
    def load(cls, path) -> "MachineState":
        with open(path) as f:
            return cls.from_json(f.read())


# --------------------------------------------------------------------------
# divergence bisection support
# --------------------------------------------------------------------------

def diff_states(a: Any, b: Any, limit: int = 20, _path: str = "") -> List[str]:
    """Human-readable paths where two state trees differ.

    The tool the mid-run bisection workflow is built on: snapshot both
    cycle paths every N cycles, and the first non-empty diff names the
    subsystem (and register) that diverged.  Accepts either
    :class:`MachineState` objects or raw state dicts.
    """
    if isinstance(a, MachineState):
        a = a.data
    if isinstance(b, MachineState):
        b = b.data
    diffs: List[str] = []
    _collect_diffs(a, b, _path or "$", diffs, limit)
    return diffs


def _collect_diffs(a: Any, b: Any, path: str, out: List[str], limit: int) -> None:
    if len(out) >= limit:
        return
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b), key=str):
            if key not in a:
                out.append(f"{path}.{key}: only in second")
            elif key not in b:
                out.append(f"{path}.{key}: only in first")
            else:
                _collect_diffs(a[key], b[key], f"{path}.{key}", out, limit)
            if len(out) >= limit:
                return
    elif isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} != {len(b)}")
            return
        for i, (x, y) in enumerate(zip(a, b)):
            _collect_diffs(x, y, f"{path}[{i}]", out, limit)
            if len(out) >= limit:
                return
    elif a != b:
        out.append(f"{path}: {a!r} != {b!r}")
