"""Workload generators: byte-code programs for the four emulators.

Each builder returns a :class:`Workload` whose machine is loaded and
initialized; ``run()`` executes to the HALT byte code and ``verify()``
checks the architectural result, so benchmark numbers are only reported
for runs that computed the right answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

from ..config import MachineConfig, PRODUCTION
from ..emulators import bcpl, lisp, mesa, smalltalk
from ..emulators.isa import BytecodeAssembler, EmulatorContext
from ..errors import EmulatorError


@dataclass(frozen=True)
class SliceResult:
    """Outcome of one bounded slice of execution.

    The machine either reached HALT (``halted``) or spent its whole
    cycle budget with work remaining (``exhausted``) -- a budget-capped
    run is a scheduling event, not an error, so sliced callers (the
    session service, the CLI's max-cycles loop) can decide whether to
    grant another slice.
    """

    cycles: int
    halted: bool

    @property
    def exhausted(self) -> bool:
        return not self.halted


@dataclass
class Workload:
    """A runnable emulator scenario with a correctness oracle."""

    name: str
    ctx: EmulatorContext
    verify: Callable[[], bool]
    meta: Dict[str, int] = field(default_factory=dict)

    def run_slice(self, cycles: int) -> SliceResult:
        """Advance at most *cycles* simulated cycles; report the outcome."""
        ran = self.ctx.run(cycles)
        return SliceResult(cycles=ran, halted=self.ctx.halted)

    def run(self, max_cycles: int = 5_000_000) -> int:
        result = self.run_slice(max_cycles)
        if not result.halted:
            raise EmulatorError(f"workload {self.name} did not halt")
        if not self.verify():
            raise EmulatorError(f"workload {self.name} computed a wrong result")
        return result.cycles


# --------------------------------------------------------------------------
# Mesa
# --------------------------------------------------------------------------

def mesa_loop_sum(n: int = 200, config: MachineConfig = PRODUCTION) -> Workload:
    """Load/store/branch-heavy loop: sum 1..n into local 0."""
    ctx = mesa.build_mesa_machine(config)
    b = BytecodeAssembler(ctx.table)
    b.op("LIT", 0); b.op("SL", 0)
    b.op("LITW", n); b.op("SL", 1)
    b.label("loop")
    b.op("LL", 0); b.op("LL", 1); b.op("ADD"); b.op("SL", 0)
    b.op("LL", 1); b.op("LIT", 1); b.op("SUB"); b.op("SL", 1)
    b.op("LL", 1); b.op("JNZ", "loop")
    b.op("HALT")
    ctx.load_program(b.assemble())
    expected = n * (n + 1) // 2 & 0xFFFF
    return Workload(
        "mesa_loop_sum", ctx,
        lambda: ctx.memory_word(mesa.FRAMES_VA + 2) == expected,
        {"macros": 10 * n + 5},
    )


def mesa_fib(k: int = 12, config: MachineConfig = PRODUCTION) -> Workload:
    """Call-heavy recursion: fib(k) via FC/ENTER/RET."""
    ctx = mesa.build_mesa_machine(config)
    b = BytecodeAssembler(ctx.table)
    b.op("LITW", k); b.op("FC", "fib"); b.op("SL", 0); b.op("HALT")
    b.label("fib")
    b.op("ENTER", 1)
    b.op("LL", 0); b.op("LIT", 2); b.op("SUB"); b.op("JNEG", "base")
    b.op("LL", 0); b.op("LIT", 1); b.op("SUB"); b.op("FC", "fib"); b.op("SL", 1)
    b.op("LL", 0); b.op("LIT", 2); b.op("SUB"); b.op("FC", "fib")
    b.op("LL", 1); b.op("ADD"); b.op("RET")
    b.label("base")
    b.op("LL", 0); b.op("RET")
    ctx.load_program(b.assemble())

    def fib(x):
        a, bb = 0, 1
        for _ in range(x):
            a, bb = bb, a + bb
        return a

    expected = fib(k) & 0xFFFF
    return Workload(
        "mesa_fib", ctx,
        lambda: ctx.memory_word(mesa.FRAMES_VA + 2) == expected,
    )


def mesa_bubble_sort(
    n: int = 16, seed: int = 1, config: MachineConfig = PRODUCTION
) -> Workload:
    """Array-heavy composite kernel: bubble sort via AL/AS/LT.

    locals: 0=i, 1=j, 2=a[j], 3=a[j+1]; the array lives at ARRAY_VA.
    """
    array_va = 0x3800
    ctx = mesa.build_mesa_machine(config)
    b = BytecodeAssembler(ctx.table)
    b.op("LITW", n - 1); b.op("SL", 0)               # i = n-1
    b.label("outer")
    b.op("LIT", 0); b.op("SL", 1)                     # j = 0
    b.label("inner")
    b.op("LITW", array_va); b.op("LL", 1); b.op("AL"); b.op("SL", 2)
    b.op("LL", 1); b.op("INC"); b.op("SL", 4)
    b.op("LITW", array_va); b.op("LL", 4); b.op("AL"); b.op("SL", 3)
    b.op("LL", 3); b.op("LL", 2); b.op("LT"); b.op("JZ", "noswap")
    b.op("LITW", array_va); b.op("LL", 1); b.op("LL", 3); b.op("AS")
    b.op("LITW", array_va); b.op("LL", 4); b.op("LL", 2); b.op("AS")
    b.label("noswap")
    b.op("LL", 1); b.op("INC"); b.op("SL", 1)
    b.op("LL", 1); b.op("LL", 0); b.op("LT"); b.op("JNZ", "inner")
    b.op("LL", 0); b.op("LIT", 1); b.op("SUB"); b.op("SL", 0)
    b.op("LL", 0); b.op("JNZ", "outer")
    b.op("HALT")
    ctx.load_program(b.assemble())

    state = seed or 1
    values = []
    for _ in range(n):
        state = (state * 1103515245 + 12345) & 0x7FFF
        values.append(state)
    for i, v in enumerate(values):
        ctx.set_memory_word(array_va + i, v)
    expected = sorted(values)

    def check() -> bool:
        return [ctx.memory_word(array_va + i) for i in range(n)] == expected

    return Workload("mesa_bubble_sort", ctx, check)


def mesa_mul_kernel(iters: int = 40, config: MachineConfig = PRODUCTION) -> Workload:
    """Hardware multiply steps: sum of i*i for i in 1..iters (mod 2^16)."""
    ctx = mesa.build_mesa_machine(config)
    b = BytecodeAssembler(ctx.table)
    b.op("LIT", 0); b.op("SL", 0)
    b.op("LITW", iters); b.op("SL", 1)
    b.label("loop")
    b.op("LL", 1); b.op("LL", 1); b.op("MUL")
    b.op("LL", 0); b.op("ADD"); b.op("SL", 0)
    b.op("LL", 1); b.op("LIT", 1); b.op("SUB"); b.op("SL", 1)
    b.op("LL", 1); b.op("JNZ", "loop")
    b.op("HALT")
    ctx.load_program(b.assemble())
    expected = sum(i * i for i in range(1, iters + 1)) & 0xFFFF
    return Workload(
        "mesa_mul_kernel", ctx,
        lambda: ctx.memory_word(mesa.FRAMES_VA + 2) == expected,
    )


def mesa_field_kernel(iters: int = 100, config: MachineConfig = PRODUCTION) -> Workload:
    """Field read/modify/write on a packed record (RF/WF/SETF)."""
    ctx = mesa.build_mesa_machine(config)
    record_va = 0x3100
    # Field: bits 4..9 (position 4, width 6) of record word 0.
    read_spec = mesa.field_spec(4, 6)
    write_spec = mesa.insert_spec(4, 6)
    b = BytecodeAssembler(ctx.table)
    b.op("LITW", iters); b.op("SL", 1)
    b.label("loop")
    b.op("SETF", read_spec)
    b.op("LITW", record_va); b.op("RF", 0)      # push field
    b.op("INC")                                  # field + 1
    b.op("SETF", write_spec)
    b.op("LITW", record_va); b.op("WF", 0)      # write it back (pops val, ptr)
    b.op("LL", 1); b.op("LIT", 1); b.op("SUB"); b.op("SL", 1)
    b.op("LL", 1); b.op("JNZ", "loop")
    b.op("HALT")
    ctx.load_program(b.assemble())
    ctx.set_memory_word(record_va, 0x8003)  # field starts at 0

    def check() -> bool:
        value = ctx.memory_word(record_va)
        fld = (value >> 4) & 0x3F
        untouched = value & ~(0x3F << 4) & 0xFFFF
        return fld == (iters & 0x3F) and untouched == 0x8003

    return Workload("mesa_field_kernel", ctx, check)


# --------------------------------------------------------------------------
# Lisp
# --------------------------------------------------------------------------

def lisp_list_sum(n: int = 50, config: MachineConfig = PRODUCTION) -> Workload:
    """CAR/CDR walk summing an n-element list."""
    ctx = lisp.build_lisp_machine(config)
    b = BytecodeAssembler(ctx.table)
    s_l, s_t = lisp.symbol_operand(0), lisp.symbol_operand(1)
    b.op("LIN", 0); b.op("SLV", s_t)
    b.label("loop")
    b.op("LLV", s_l); b.op("JNIL", "done")
    b.op("LLV", s_t); b.op("LLV", s_l); b.op("CAR"); b.op("ADDL"); b.op("SLV", s_t)
    b.op("LLV", s_l); b.op("CDR"); b.op("SLV", s_l)
    b.op("JMPL", "loop")
    b.label("done")
    b.op("HALTL")
    ctx.load_program(b.assemble())
    head = lisp.build_list(ctx, range(1, n + 1))
    lisp.set_symbol_value(ctx, 0, lisp.TAG_PAIR, head)
    expected = (lisp.TAG_INT, n * (n + 1) // 2 & 0xFFFF)
    return Workload(
        "lisp_list_sum", ctx, lambda: lisp.symbol_value(ctx, 1) == expected
    )


def lisp_call_kernel(
    iters: int = 20, config: MachineConfig = PRODUCTION
) -> Workload:
    """Function calls with two bound arguments, repeated *iters* times."""
    ctx = lisp.build_lisp_machine(config)
    b = BytecodeAssembler(ctx.table)
    s_x, s_y = lisp.symbol_operand(2), lisp.symbol_operand(3)
    s_acc, s_i = lisp.symbol_operand(0), lisp.symbol_operand(1)
    fn_sym = 4
    b.op("LIN", 0); b.op("SLV", s_acc)
    b.op("LIN", iters); b.op("SLV", s_i)
    b.label("loop")
    b.op("LLV", s_acc); b.op("LIN", 3)
    b.op("CALLL", lisp.symbol_operand(fn_sym))
    b.op("SLV", s_acc)
    b.op("LLV", s_i); b.op("LIN", 1); b.op("SUBL"); b.op("SLV", s_i)
    b.op("LLV", s_i); b.op("JZL", "done")
    b.op("JMPL", "loop")
    b.label("done")
    b.op("HALTL")
    b.label("fn")
    b.op("BIND", s_y); b.op("BIND", s_x)
    b.op("LLV", s_x); b.op("LLV", s_y); b.op("ADDL")
    b.op("RETL")
    ctx.load_program(b.assemble())
    lisp.define_function(ctx, fn_sym, b.address_of("fn"))
    lisp.set_symbol_value(ctx, 2, lisp.TAG_INT, 0)
    lisp.set_symbol_value(ctx, 3, lisp.TAG_INT, 0)
    expected = (lisp.TAG_INT, (3 * iters) & 0xFFFF)
    return Workload(
        "lisp_call_kernel", ctx, lambda: lisp.symbol_value(ctx, 0) == expected
    )


def lisp_cons_kernel(n: int = 30, config: MachineConfig = PRODUCTION) -> Workload:
    """Build an n-element list with CONS, then measure its sum."""
    ctx = lisp.build_lisp_machine(config)
    b = BytecodeAssembler(ctx.table)
    s_l, s_i, s_t = (lisp.symbol_operand(k) for k in (0, 1, 2))
    b.op("NILP"); b.op("SLV", s_l)
    b.op("LIN", n); b.op("SLV", s_i)
    b.label("build")
    b.op("LLV", s_i); b.op("LLV", s_l); b.op("CONS"); b.op("SLV", s_l)
    b.op("LLV", s_i); b.op("LIN", 1); b.op("SUBL"); b.op("SLV", s_i)
    b.op("LLV", s_i); b.op("JZL", "sum")
    b.op("JMPL", "build")
    b.label("sum")
    b.op("LIN", 0); b.op("SLV", s_t)
    b.label("loop")
    b.op("LLV", s_l); b.op("JNIL", "done")
    b.op("LLV", s_t); b.op("LLV", s_l); b.op("CAR"); b.op("ADDL"); b.op("SLV", s_t)
    b.op("LLV", s_l); b.op("CDR"); b.op("SLV", s_l)
    b.op("JMPL", "loop")
    b.label("done")
    b.op("HALTL")
    ctx.load_program(b.assemble())
    expected = (lisp.TAG_INT, n * (n + 1) // 2 & 0xFFFF)
    return Workload(
        "lisp_cons_kernel", ctx, lambda: lisp.symbol_value(ctx, 2) == expected
    )


# --------------------------------------------------------------------------
# BCPL and Smalltalk
# --------------------------------------------------------------------------

def bcpl_loop_sum(n: int = 200, config: MachineConfig = PRODUCTION) -> Workload:
    ctx = bcpl.build_bcpl_machine(config)
    b = BytecodeAssembler(ctx.table)
    b.op("LDI", 0); b.op("STA", 0)
    b.op("LDI", n); b.op("STA", 1)
    b.label("loop")
    b.op("LDA", 0); b.op("ADDA", 1); b.op("STA", 0)
    b.op("LDA", 1); b.op("DECA"); b.op("STA", 1)
    b.op("JNZA", "loop")
    b.op("HALTA")
    ctx.load_program(b.assemble())
    expected = n * (n + 1) // 2 & 0xFFFF
    return Workload(
        "bcpl_loop_sum", ctx, lambda: bcpl.static_value(ctx, 0) == expected
    )


def smalltalk_counter(sends: int = 50, config: MachineConfig = PRODUCTION) -> Workload:
    """Message-send benchmark: `counter add: 5` *sends* times."""
    ctx = smalltalk.build_smalltalk_machine(config)
    om = smalltalk.ObjectMemory(ctx)
    sel_add = 7
    # Dictionary with decoys so the probe loop does some work.
    cls = om.make_class({3: 0, 9: 0, sel_add: 0})
    counter = om.make_instance(cls, [0])
    b = BytecodeAssembler(ctx.table)
    b.op("PUSHC", sends)
    b.label("loop")
    b.op("DUPS"); b.op("JZS", "end")
    b.op("PUSHC", counter)
    b.op("PUSHC", 5)
    b.op("SEND1", sel_add)
    b.op("DROPS")
    b.op("PUSHC", 1); b.op("SUBS")
    b.op("JMPS", "loop")
    b.label("end")
    b.op("HALTS")
    b.label("madd")
    b.op("PUSHA")
    b.op("PUSHIV", smalltalk.ivar_operand(0))
    b.op("ADDS")
    b.op("STIV", smalltalk.ivar_operand(0))
    b.op("PUSHR")
    b.op("RETS")
    ctx.load_program(b.assemble())
    om.set_method(cls, sel_add, b.address_of("madd"))
    expected = (5 * sends) & 0xFFFF
    return Workload(
        "smalltalk_counter", ctx, lambda: om.ivar(counter, 0) == expected
    )


ALL_WORKLOADS = {
    "mesa_loop_sum": mesa_loop_sum,
    "mesa_bubble_sort": mesa_bubble_sort,
    "mesa_mul_kernel": mesa_mul_kernel,
    "mesa_fib": mesa_fib,
    "mesa_field_kernel": mesa_field_kernel,
    "lisp_list_sum": lisp_list_sum,
    "lisp_call_kernel": lisp_call_kernel,
    "lisp_cons_kernel": lisp_cons_kernel,
    "bcpl_loop_sum": bcpl_loop_sum,
    "smalltalk_counter": smalltalk_counter,
}
