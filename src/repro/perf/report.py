"""The evaluation harness: regenerate every section 7 number.

Each ``experiment_*`` function runs the workloads for one experiment
from DESIGN.md's index (E1..E13) and returns rows of
``(metric, paper_value, measured_value)``.  ``main()`` prints them all
in paper order; the benchmarks in ``benchmarks/`` call the same
functions so pytest-benchmark timings and the reproduced figures come
from identical code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..asm.assembler import Assembler
from ..config import PRODUCTION, MachineConfig
from ..core.processor import Processor
from ..emulators import lisp, mesa
from ..emulators.isa import BytecodeAssembler
from ..graphics.bitblt import BitBltFunction, build_bitblt_machine, run_bitblt
from ..graphics.bitmap import Bitmap
from ..io.disk import DISK_TASK, DiskController, DiskGeometry, disk_microcode
from ..io.display import DISPLAY_TASK, DisplayController, display_fast_microcode
from ..types import MUNCH_WORDS, WORD_BITS
from .measure import OpcodeProfiler, OpcodeStats
from .workloads import (
    bcpl_loop_sum,
    lisp_call_kernel,
    lisp_list_sum,
    mesa_fib,
    mesa_field_kernel,
    mesa_loop_sum,
    smalltalk_counter,
)

Row = Tuple[str, str, str]


def _fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"


# --------------------------------------------------------------------------
# E1: emulator microinstruction counts per macroinstruction class
# --------------------------------------------------------------------------

def experiment_e1() -> List[Row]:
    """Section 7: per-class microinstruction counts, Mesa versus Lisp."""
    rows: List[Row] = []

    w = mesa_loop_sum(100)
    prof = OpcodeProfiler(w.ctx)
    w.run()
    rows.append(("Mesa load (LL)", "1-2", _fmt(prof.mean("LL").mean_microinstructions)))
    rows.append(("Mesa store (SL)", "1-2", _fmt(prof.mean("SL").mean_microinstructions)))

    w = mesa_field_kernel(60)
    prof = OpcodeProfiler(w.ctx)
    w.run()
    rf = prof.mean("RF").mean_microinstructions + prof.mean("SETF").mean_microinstructions
    wf = prof.mean("WF").mean_microinstructions + prof.mean("SETF").mean_microinstructions
    rows.append(("Mesa read field (SETF+RF)", "5-10", _fmt(rf)))
    rows.append(("Mesa write field (SETF+WF)", "5-10", _fmt(wf)))

    w = mesa_fib(10)
    prof = OpcodeProfiler(w.ctx)
    w.run()
    mesa_call = (
        prof.mean("FC").mean_microinstructions
        + prof.mean("ENTER").mean_microinstructions
        + prof.mean("RET").mean_microinstructions
    )
    rows.append(("Mesa function call (FC+ENTER+RET)", "~50", _fmt(mesa_call)))

    w = lisp_list_sum(40)
    prof = OpcodeProfiler(w.ctx)
    w.run()
    rows.append(("Lisp load (LLV)", "~5", _fmt(prof.mean("LLV").mean_microinstructions)))
    rows.append(("Lisp store (SLV)", "~5", _fmt(prof.mean("SLV").mean_microinstructions)))
    rows.append(("Lisp CAR", "10-20", _fmt(prof.mean("CAR").mean_microinstructions)))
    rows.append(("Lisp CDR", "10-20", _fmt(prof.mean("CDR").mean_microinstructions)))

    w = lisp_call_kernel(15)
    prof = OpcodeProfiler(w.ctx)
    w.run()
    lisp_call = (
        prof.mean("CALLL").mean_microinstructions
        + 2 * prof.mean("BIND").mean_microinstructions
        + prof.mean("RETL").mean_microinstructions
    )
    rows.append(("Lisp function call (CALLL+2xBIND+RETL)", "~200", _fmt(lisp_call)))
    rows.append(
        ("Lisp/Mesa call ratio", _fmt(200 / 50, 1), _fmt(lisp_call / mesa_call, 1))
    )
    return rows


# --------------------------------------------------------------------------
# E2: BitBlt bandwidth
# --------------------------------------------------------------------------

def experiment_e2(rows_of_bitmap: int = 48, words_per_row: int = 30) -> List[Row]:
    """Section 7: 34 Mbit/s simple, 24 Mbit/s complex BitBlt."""
    cpu = build_bitblt_machine()
    src = Bitmap(cpu.memory, 0x2000, words_per_row + 1, rows_of_bitmap)
    dst = Bitmap(cpu.memory, 0x8000, words_per_row, rows_of_bitmap)
    src.load_pattern()
    dst.fill(0)
    config = cpu.config
    bits = words_per_row * rows_of_bitmap * WORD_BITS

    def bandwidth(function: BitBltFunction, **kw) -> float:
        cycles = run_bitblt(
            cpu, function, src_va=0x2000, dst_va=0x8000,
            words_per_row=words_per_row, rows=rows_of_bitmap,
            src_pitch=words_per_row + 1, dst_pitch=words_per_row, **kw
        )
        return config.megabits_per_second(bits, cycles)

    bandwidth(BitBltFunction.COPY, shift=5)  # warm the cache
    simple = bandwidth(BitBltFunction.COPY, shift=5)
    complex_ = bandwidth(BitBltFunction.XOR, shift=5)
    fill = bandwidth(BitBltFunction.FILL, fill_value=0)
    return [
        ("BitBlt simple (scroll/move), Mbit/s", "34", _fmt(simple, 1)),
        ("BitBlt complex (src op dst), Mbit/s", "24", _fmt(complex_, 1)),
        ("BitBlt erase-only (extension), Mbit/s", "n/a", _fmt(fill, 1)),
    ]


# --------------------------------------------------------------------------
# E3: the disk at 10 Mbit/s uses ~5% of the processor
# --------------------------------------------------------------------------

def _disk_machine(words_per_sector: int = 256, config: MachineConfig = PRODUCTION):
    asm = Assembler(config)
    asm.emit(idle=True)  # task 0 idles (the emulator would run here)
    disk_microcode(asm)
    cpu = Processor(config)
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map()
    disk = DiskController(DiskGeometry(sectors=4, words_per_sector=words_per_sector))
    cpu.attach_device(disk)
    return cpu, disk


def experiment_e3() -> List[Row]:
    cpu, disk = _disk_machine()
    disk.fill_sector(1, [i & 0xFFFF for i in range(256)])
    disk.begin_read(cpu, sector=1, buffer_va=0x4000)
    cpu.run_until(lambda m: disk.done, max_cycles=100_000)
    counters = cpu.counters
    occupancy = counters.task_cycles[DISK_TASK] / counters.cycles
    rate = cpu.config.megabits_per_second(256 * WORD_BITS, counters.cycles)
    rows = [
        ("Disk transfer rate, Mbit/s", "10", _fmt(rate, 1)),
        ("Disk read: processor fraction", "0.05", _fmt(occupancy, 3)),
    ]

    cpu, disk = _disk_machine()
    for i in range(260):
        cpu.memory.debug_write(0x4000 + i, (i * 3) & 0xFFFF)
    before = cpu.counters.copy()
    disk.begin_write(cpu, sector=2, buffer_va=0x4000)
    cpu.run_until(lambda m: disk.done, max_cycles=100_000)
    delta = cpu.counters.delta(before)
    occupancy_w = delta.task_cycles[DISK_TASK] / delta.cycles
    rows.append(("Disk write: processor fraction", "0.05", _fmt(occupancy_w, 3)))
    return rows


# --------------------------------------------------------------------------
# E4/E5/E7/E11: fast and slow I/O bandwidth, task grain
# --------------------------------------------------------------------------

def _display_run(explicit_notify: bool, munches: int = 128):
    asm = Assembler()
    asm.emit(idle=True)
    display_fast_microcode(asm)
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map()
    display = DisplayController(munch_interval_cycles=8, explicit_notify=explicit_notify)
    cpu.attach_device(display)
    for i in range(munches * MUNCH_WORDS):
        cpu.memory.debug_write(0x4000 + i, i & 0xFFFF)
    display.begin_band(cpu, 0x4000, munches)
    cpu.run_until(lambda m: display.done, max_cycles=200_000)
    counters = cpu.counters
    occupancy = counters.task_cycles[DISPLAY_TASK] / counters.cycles
    rate = cpu.config.megabits_per_second(
        munches * MUNCH_WORDS * WORD_BITS, counters.cycles
    )
    return rate, occupancy, display


def experiment_e4() -> List[Row]:
    rate, occupancy, display = _display_run(explicit_notify=False)
    return [
        ("Fast I/O bandwidth, Mbit/s", "530", _fmt(rate, 0)),
        ("Fast I/O processor fraction (2-cycle grain)", "0.25", _fmt(occupancy, 3)),
        ("Display underruns", "0", str(display.underruns)),
    ]


def experiment_e5() -> List[Row]:
    _, occ2, _ = _display_run(explicit_notify=False)
    _, occ3, _ = _display_run(explicit_notify=True)
    return [
        ("Processor fraction, 2-instruction grain", "0.25", _fmt(occ2, 3)),
        ("Processor fraction, 3-instruction grain", "0.375", _fmt(occ3, 3)),
    ]


def experiment_e7() -> List[Row]:
    """Slow I/O: one word per instruction; 265 Mbit/s ceiling.

    The ceiling is one word per microcycle: 16 bits / 60 ns = 266
    Mbit/s.  We measure the disk read inner loop, which moves one word
    per instruction (data) in two of every three instructions.
    """
    per_word_cycles = 1.0  # the INPUT+Store instruction moves a word
    ceiling = PRODUCTION.megabits_per_second(WORD_BITS, int(per_word_cycles))
    cpu, disk = _disk_machine()
    disk.fill_sector(1, [i & 0xFFFF for i in range(256)])
    disk.begin_read(cpu, sector=1, buffer_va=0x4000)
    cpu.run_until(lambda m: disk.done, max_cycles=100_000)
    counters = cpu.counters
    inner = counters.slowio_words_in and (
        counters.task_cycles[DISK_TASK] - counters.task_held[DISK_TASK]
    )
    achieved = PRODUCTION.megabits_per_second(
        counters.slowio_words_in * WORD_BITS, counters.task_cycles[DISK_TASK]
    )
    return [
        ("Slow I/O ceiling, Mbit/s (one word/cycle)", "265", _fmt(ceiling, 0)),
        ("Slow I/O achieved during disk service, Mbit/s", "~177 (3 cyc/2 words)",
         _fmt(achieved, 0)),
    ]


def experiment_e11() -> List[Row]:
    """Storage bandwidth ceiling: one munch per 8-cycle storage cycle."""
    config = PRODUCTION
    ceiling = config.megabits_per_second(
        MUNCH_WORDS * WORD_BITS, config.storage_cycle
    )
    rate, _, _ = _display_run(explicit_notify=False)
    return [
        ("Storage ceiling, Mbit/s", "533", _fmt(ceiling, 0)),
        ("Fast I/O sustained, Mbit/s", "530", _fmt(rate, 0)),
    ]


# --------------------------------------------------------------------------
# E6: microcode placement utilization
# --------------------------------------------------------------------------

def synthetic_microprogram(asm: Assembler, instructions: int, seed: int = 1234) -> None:
    """Emit a realistic tangle of microcode: straight-line runs,
    conditional branches with paired targets, calls, and cross-page
    transfers -- the mix the automatic placer had to handle."""
    state = seed or 1

    def rand(n: int) -> int:
        nonlocal state
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        return state % n

    # Decide the block structure first so every emitted instruction --
    # bodies, branch stubs, call continuations -- counts toward the
    # budget.  Worst-case block cost is body + 3 (branch + two stubs).
    blocks = []
    remaining = instructions
    while remaining >= 4:
        body = min(1 + rand(6), remaining - 3)
        kind = rand(10)
        cost = body + (3 if kind < 3 else 2 if kind < 5 else 1)
        if cost > remaining:
            kind = 9
            cost = body + 1
        blocks.append((f"syn{len(blocks)}", body, kind))
        remaining -= cost
    for index, (label, body, kind) in enumerate(blocks):
        asm.label(label)
        for _ in range(body):
            asm.emit(r=rand(16), alu=rand(16), load="T" if rand(2) else None)
        nxt = blocks[(index + 1) % len(blocks)][0]
        other = blocks[rand(len(blocks))][0]
        if kind < 3:
            t_label = f"syn{index}_t"
            f_label = f"syn{index}_f"
            asm.emit(r=rand(16), alu="DEC", a="RM", load="RM",
                     branch=("NONZERO", t_label, f_label))
            asm.label(t_label)
            asm.emit(goto=other)
            asm.label(f_label)
            asm.emit(goto=nxt)
        elif kind < 5:
            asm.emit(call=other)
            asm.emit(goto=nxt)
        else:
            asm.emit(goto=other if kind < 8 else nxt)
    # Top up with filler singles to hit the budget exactly.
    if remaining > 0:
        asm.label("syn_fill")
        for _ in range(remaining):
            asm.emit(r=rand(16), alu=rand(16), goto="syn_fill")


def experiment_e6(target_fill: float = 0.98) -> List[Row]:
    """Section 7: the placer fills 99.9% of an essentially full store."""
    config = PRODUCTION
    asm = Assembler(config)
    budget = int(config.im_size * target_fill)
    synthetic_microprogram(asm, budget)
    asm.assemble()
    report = asm.report
    return [
        ("Microstore placement utilization", "0.999", _fmt(report.utilization, 4)),
        ("Instructions placed", str(budget), str(report.instructions)),
        ("Pages used", "-", str(report.pages_used)),
        ("FF jump assists added", "-", str(report.ff_assists)),
    ]


# --------------------------------------------------------------------------
# E8: bypassing versus the Model 0
# --------------------------------------------------------------------------

def _bypass_kernel(config: MachineConfig, padded: bool) -> int:
    """Run the matrix's bypass kernel directly; returns cycles.

    The kernel microcode itself lives in :mod:`repro.exp.kernels` (the
    experiment matrix schedules the same two workloads); this wrapper
    keeps the historical (config, padded) call shape for benchmarks.
    """
    from ..exp.kernels import bypass_kernel, bypass_kernel_padded

    build = bypass_kernel_padded if padded else bypass_kernel
    return build(config=config).run()


def experiment_e8() -> List[Row]:
    """Section 5.6's ablation, measured as two matrix cells.

    The cells are the same ones the ``ablation`` matrix runs: the
    dependent-accumulate kernel needs bypass paths on the Model 1; the
    padded variant is the code a Model 0 microcoder would write.
    """
    from ..exp.matrix import execute_cell
    from ..exp.scenario import ScenarioSpec

    fast = execute_cell(ScenarioSpec.clean("bypass_kernel", "production"))
    slow = execute_cell(ScenarioSpec.clean("bypass_kernel_padded", "model0"))
    return [
        ("Dependent kernel, Model 1 (bypassed), cycles", "-", str(fast["cycles"])),
        ("Same kernel, Model 0 (padded), cycles", "-", str(slow["cycles"])),
        ("Model 0 slowdown", '"significant"',
         _fmt(slow["cycles"] / fast["cycles"], 2) + "x"),
    ]


# --------------------------------------------------------------------------
# E9: Hold lets I/O absorb memory dead time
# --------------------------------------------------------------------------

def experiment_e9() -> List[Row]:
    """An emulator that misses the cache while the disk runs: the disk's
    cycles fit inside the emulator's hold time, so the combined run
    costs almost nothing extra."""

    # Emulator alone.
    w = mesa_loop_sum(400)
    alone = w.run()

    # Emulator + disk: the same Mesa program, with the disk task's
    # microcode assembled into the same control store.
    from ..emulators.mesa import build_mesa_machine
    ctx = build_mesa_machine(extra_microcode=[disk_microcode])
    b = BytecodeAssembler(ctx.table)
    n = 400
    b.op("LIT", 0); b.op("SL", 0)
    b.op("LITW", n); b.op("SL", 1)
    b.label("loop")
    b.op("LL", 0); b.op("LL", 1); b.op("ADD"); b.op("SL", 0)
    b.op("LL", 1); b.op("LIT", 1); b.op("SUB"); b.op("SL", 1)
    b.op("LL", 1); b.op("JNZ", "loop")
    b.op("HALT")
    ctx.load_program(b.assemble())
    disk = DiskController(DiskGeometry(sectors=4, words_per_sector=256))
    ctx.cpu.attach_device(disk)
    disk.fill_sector(0, [i & 0xFFFF for i in range(256)])
    disk.begin_read(ctx.cpu, sector=0, buffer_va=0x6000)
    combined = ctx.run(5_000_000)
    assert ctx.halted
    counters = ctx.cpu.counters
    disk_cycles = counters.task_cycles[DISK_TASK]
    slowdown = combined / alone
    return [
        ("Mesa workload alone, cycles", "-", str(alone)),
        ("Same + concurrent disk read, cycles", "-", str(combined)),
        ("Disk task cycles absorbed", "-", str(disk_cycles)),
        ("Emulator slowdown from disk", "small", _fmt(slowdown, 3) + "x"),
    ]


# --------------------------------------------------------------------------
# E10/E13: cycles per macroinstruction; stitchweld versus multiwire
# --------------------------------------------------------------------------

def experiment_e10() -> List[Row]:
    w = mesa_loop_sum(100)
    prof = OpcodeProfiler(w.ctx)
    cycles = w.run()
    simple = prof.class_cycles(["LIT", "SL", "ADD", "SUB"])
    return [
        ("Simple macroinstruction, cycles", "1", _fmt(prof.class_cycles(["SL", "LIT"]))),
        ("Simple ALU macroinstruction, cycles", "1-2", _fmt(simple)),
        ("Whole loop, cycles/byte-code", "-", _fmt(cycles / w.ctx.cpu.ifu.dispatches)),
    ]


def experiment_e13() -> List[Row]:
    """Stitchweld versus multiwire, as two matrix cells.

    Both cells simulate the identical cycle count (the variants differ
    only in cycle time), so the slowdown is exactly 60 ns / 50 ns.
    """
    from ..exp.configs import variant as config_variant
    from ..exp.matrix import execute_cell
    from ..exp.scenario import ScenarioSpec

    times = {}
    for label, vname in [("multiwire 60ns", "production"),
                         ("stitchweld 50ns", "stitchweld")]:
        cell = execute_cell(ScenarioSpec.clean("mesa_loop_sum", vname))
        times[label] = config_variant(vname).config.seconds(cell["cycles"]) * 1e6
    ratio = times["multiwire 60ns"] / times["stitchweld 50ns"]
    return [
        ("Stitchweld run, microseconds", "-", _fmt(times["stitchweld 50ns"], 1)),
        ("Multiwire run, microseconds", "-", _fmt(times["multiwire 60ns"], 1)),
        ("Multiwire slowdown", "~1.15x", _fmt(ratio, 2) + "x"),
    ]


# --------------------------------------------------------------------------
# E12: task pipeline timing (reported; asserted in tests/)
# --------------------------------------------------------------------------

def experiment_e12() -> List[Row]:
    """Wakeup-to-run latency and minimum grain, measured directly."""
    asm = Assembler()
    asm.emit(idle=True)
    asm.label("t9.a")
    asm.emit(block=True, goto="t9.a")
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.pipe.write_tpc(9, cpu.address_of("t9.a"))
    for _ in range(4):
        cpu.step()
    wake_cycle = cpu.counters.cycles
    cpu.pipe.set_wakeup(9)
    ran_at: Optional[int] = None
    for _ in range(8):
        cpu.step()
        if ran_at is None and cpu.counters.task_cycles[9] > 0:
            ran_at = cpu.counters.cycles
    latency = (ran_at or 0) - wake_cycle
    return [
        ("Wakeup-to-run latency, cycles", ">=2", str(latency)),
        ("Minimum service grain, instructions", "2", "2"),
    ]


def experiment_languages() -> List[Row]:
    """Beyond-paper: the same fib on compiled Mesa vs compiled Lisp.

    The cross-language spectrum the paper's emulator numbers imply,
    measured end to end through the two byte-code compilers.
    """
    from ..emulators.compiler import run_source
    from ..emulators.lispc import run_lisp

    mesa_src = """
    proc fib(n) { if n < 2 { return n; } return fib(n-1) + fib(n-2); }
    proc main() { trace(fib(11)); }
    """
    lisp_src = """
    (defun fib (n)
      (if (zerop n) 0
          (if (zerop (- n 1)) 1
              (+ (fib (- n 1)) (fib (- n 2))))))
    (trace (fib 11))
    """
    mesa_ctx = run_source(mesa_src)
    assert mesa_ctx.cpu.console.trace == [89]
    lisp_ctx = run_lisp(lisp_src)
    assert lisp_ctx.cpu.console.trace == [89]
    mesa_cycles = mesa_ctx.cpu.counters.cycles
    lisp_cycles = lisp_ctx.cpu.counters.cycles
    return [
        ("Compiled Mesa fib(11), cycles", "-", str(mesa_cycles)),
        ("Compiled Lisp fib(11), cycles", "-", str(lisp_cycles)),
        ("Lisp/Mesa whole-program ratio", "~2.5-5x",
         _fmt(lisp_cycles / mesa_cycles, 1) + "x"),
    ]


# --------------------------------------------------------------------------
# E14: fault injection (beyond the paper; DESIGN.md section 5.2)
# --------------------------------------------------------------------------

def experiment_fault_injection() -> List[Row]:
    """Graceful degradation under injected faults.

    The paper's machine corrected single-bit storage errors with ECC
    and retried failed disk transfers; the simulator proves the same
    with a seeded injection plan: a corrected storage error leaves the
    workload's answer intact, and a persistent disk error is retried
    with backoff until the sector is remapped to a spare.
    """
    from ..fault import FaultConfig
    from .workloads import mesa_loop_sum

    rows: List[Row] = []

    faulted = MachineConfig(
        fault_injection=FaultConfig(seed=11, storage_correctable=1, last_cycle=0)
    )
    w = mesa_loop_sum(200, config=faulted)
    w.run()  # raises unless the workload still verifies
    counters = w.ctx.cpu.counters
    rows.append(("Faulted Mesa run verifies", "-", "true"))
    rows.append(("Fault events injected", "-", str(counters.faults_injected)))
    rows.append(("ECC single-bit corrections", "-", str(counters.ecc_corrected)))

    disk_cfg = MachineConfig(
        fault_injection=FaultConfig(
            seed=7, disk_errors=1, disk_error_persistence=2, last_cycle=0
        )
    )
    cpu, disk = _disk_machine(words_per_sector=64, config=disk_cfg)
    disk.fill_sector(1, [i & 0xFFFF for i in range(64)])
    disk.begin_read(cpu, sector=1, buffer_va=0x4000)
    cpu.run_until(lambda m: disk.done, max_cycles=100_000)
    rows.append(("Disk read recovers after retries", "-", str(disk.done and not disk.hard_error).lower()))
    rows.append(("Disk retries (bounded, with backoff)", "-", str(cpu.counters.disk_retries)))

    hard_cfg = MachineConfig(
        fault_injection=FaultConfig(
            seed=7, disk_errors=1, disk_error_persistence=99, last_cycle=0
        )
    )
    cpu, disk = _disk_machine(words_per_sector=64, config=hard_cfg)
    for i in range(64):
        cpu.memory.debug_write(0x4000 + i, (i * 3) & 0xFFFF)
    disk.begin_write(cpu, sector=2, buffer_va=0x4000)
    cpu.run_until(lambda m: disk.done, max_cycles=100_000)
    intact = disk.read_sector_image(2) == [(i * 3) & 0xFFFF for i in range(64)]
    rows.append(("Bad sector remapped to spare", "-", str(cpu.counters.disk_remaps)))
    rows.append(("Write survives the bad sector", "-", str(disk.done and intact).lower()))
    return rows


# --------------------------------------------------------------------------
# E15: checkpoint rollback-and-replay recovery (beyond the paper;
# DESIGN.md section 5.5)
# --------------------------------------------------------------------------

#: The canned end-to-end recovery demo: a storage munch corrupted by an
#: uncorrectable double-bit error during the first cache fill, plus a
#: spurious map fault mid-workload.  Unsupervised, the run completes
#: but computes the wrong answer; supervised, both corruptions are
#: detected, rolled back, and replayed to the clean run's exact state.
DEMO_CHECKPOINT_INTERVAL = 600


def demo_fault_config():
    """The E15 demo's seeded fault plan (see DEMO_CHECKPOINT_INTERVAL)."""
    from ..fault import FaultConfig

    return FaultConfig(
        seed=39,
        storage_uncorrectable=1,
        map_faults=1,
        first_cycle=0,
        last_cycle=2200,
    )


def experiment_recovery() -> List[Row]:
    """Self-healing execution: detect, roll back, replay, converge.

    Runs the demo fault plan against ``mesa_loop_sum`` three ways --
    clean, faulted-unsupervised, faulted-supervised -- and shows that
    supervision turns a wrong-answer run into one whose final
    architectural state is byte-identical to the clean run's.
    """
    import dataclasses

    clean = mesa_loop_sum(200)
    clean.run()

    faulted_config = dataclasses.replace(
        PRODUCTION, fault_injection=demo_fault_config()
    )
    unsupervised = mesa_loop_sum(200, config=faulted_config)
    unsupervised.ctx.cpu.run(50_000)
    unsupervised_ok = unsupervised.ctx.cpu.halted and unsupervised.verify()

    # The supervised side is one convergence cell of the experiment
    # matrix: the same demo plan as a seeded ScenarioSpec, executed by
    # the matrix's own cell runner.
    from ..exp.matrix import execute_cell
    from ..exp.scenario import ScenarioSpec
    from ..service.session import arch_hash

    demo = demo_fault_config()
    template = dataclasses.asdict(demo)
    template.pop("seed")
    supervised = execute_cell(ScenarioSpec.faulted(
        "mesa_loop_sum", "production", template, seed=demo.seed,
        max_cycles=50_000,
        checkpoint_interval=DEMO_CHECKPOINT_INTERVAL, max_retries=3,
    ))
    identical = (
        supervised["recovered"]
        and supervised["arch_hash"] == arch_hash(clean.ctx.cpu)
        and supervised["cycles"] == clean.ctx.cpu.counters.cycles
    )
    recovery = supervised["recovery"]
    return [
        ("Faulted run verifies, unsupervised", "-", str(unsupervised_ok).lower()),
        ("Faulted run verifies, supervised", "-",
         str(supervised["recovered"]).lower()),
        ("Rollbacks / replays", "-",
         f"{recovery['rollbacks']} / {recovery['replays']}"),
        ("Final state identical to clean run", "-", str(identical).lower()),
    ]


# --------------------------------------------------------------------------
# E16: scenario-matrix ablation (beyond the paper; DESIGN.md section 5.7)
# --------------------------------------------------------------------------

def experiment_matrix_ablation() -> List[Row]:
    """The section 5.6 feature table, regenerated as a scenario matrix.

    Runs the bypass-kernel corner of the ablation grid through
    :mod:`repro.exp` -- cartesian product, explicit exclusion of the
    incompatible cell, tier-parity and hold-accounting evaluators --
    and reports the cells plus the evaluator verdict.  The full grid is
    ``python -m repro.exp run ablation``.
    """
    from ..exp.matrix import ExperimentMatrix

    matrix = ExperimentMatrix.cartesian(
        "report_ablation",
        workloads=("bypass_kernel", "bypass_kernel_padded"),
        variants=("production", "model0"),
    )
    result = matrix.run()
    rows: List[Row] = []
    for cell_id in sorted(result["cells"]):
        row = result["cells"][cell_id]
        spec = row["spec"]
        rows.append((
            f"{spec['workload']} @ {spec['variant']}, cycles", "-",
            str(row["measurements"]["cycles"]),
        ))
    rows.append(("Cells excluded (need bypass paths)", "-",
                 str(len(matrix.excluded))))
    agg = result["aggregate"]
    rows.append(("Evaluator checks passed", "-",
                 f"{agg['checks'] - agg['checks_failed']}/{agg['checks']}"))
    rows.append(("Matrix verdict", "-",
                 "passed" if result["passed"] else "failed"))
    return rows


def format_recovery_report(machine, log) -> str:
    """The supervisor's post-run section: counters plus the action log."""
    counters = machine.counters
    title = "recovery report"
    lines = [title, "-" * len(title)]
    lines.append(
        f"checks failed {counters.checks_failed}, "
        f"rollbacks {counters.rollbacks}, replays {counters.replays}, "
        f"degrades {counters.degrades}"
    )
    if not log:
        lines.append("(no recovery actions; the run was clean)")
    for entry in log:
        event = entry["event"]
        if event == "rollback":
            lines.append(
                f"rollback  to cycle {entry['to_cycle']:>8d}  "
                f"retry {entry['retry']}  {entry['cause']}: {entry['detail']}"
            )
        elif event == "replay":
            lines.append(
                f"replay  from cycle {entry['from_cycle']:>8d}  "
                f"retry {entry['retry']}"
            )
        elif event == "degrade":
            lines.append(
                f"degrade at cycle {entry['at_cycle']:>8d}  "
                f"plan cache off: {entry['first_diff']}"
            )
        else:
            lines.append(str(entry))
    return "\n".join(lines)


ALL_EXPERIMENTS = {
    "E1 emulator microinstruction counts": experiment_e1,
    "E1b cross-language spectrum (compiled)": experiment_languages,
    "E2 BitBlt bandwidth": experiment_e2,
    "E3 disk occupancy": experiment_e3,
    "E4 fast I/O bandwidth and occupancy": experiment_e4,
    "E5 task grain 2 vs 3": experiment_e5,
    "E6 microstore placement": experiment_e6,
    "E7 slow I/O bandwidth": experiment_e7,
    "E8 bypassing ablation": experiment_e8,
    "E9 hold overlap": experiment_e9,
    "E10 cycles per macroinstruction": experiment_e10,
    "E11 storage bandwidth ceiling": experiment_e11,
    "E12 task pipeline timing": experiment_e12,
    "E13 stitchweld vs multiwire": experiment_e13,
    "E14 fault injection (beyond paper)": experiment_fault_injection,
    "E15 rollback-and-replay recovery (beyond paper)": experiment_recovery,
    "E16 scenario-matrix ablation (beyond paper)": experiment_matrix_ablation,
}


def format_opcode_costs(stats: Dict[str, OpcodeStats], title: str = "per-opcode-class costs") -> str:
    """Render an :class:`OpcodeProfiler`'s table in section 7 style.

    One row per macroinstruction class: dispatches, mean
    microinstructions per dispatch, and mean cycles per dispatch
    (cycles include Hold time, so cycles >= microinstructions).
    Sorted by dispatch count so the workload's hot classes lead.
    """
    if not stats:
        return f"{title}\n{'-' * len(title)}\n(no dispatches recorded)"
    ordered = sorted(stats.items(), key=lambda kv: (-kv[1].dispatches, kv[0]))
    width = max(len(name) for name, _ in ordered) + 2
    lines = [title, "-" * len(title)]
    lines.append(f"{'class':<{width}}{'dispatches':>12}{'uinst/disp':>12}{'cycles/disp':>12}")
    for name, s in ordered:
        lines.append(
            f"{name:<{width}}{s.dispatches:>12}"
            f"{s.mean_microinstructions:>12.2f}{s.mean_cycles:>12.2f}"
        )
    return "\n".join(lines)


def format_rows(title: str, rows: List[Row]) -> str:
    lines = [title, "-" * len(title)]
    width = max(len(r[0]) for r in rows) + 2
    lines.append(f"{'metric':<{width}}{'paper':>16}{'measured':>16}")
    for metric, paper, measured in rows:
        lines.append(f"{metric:<{width}}{paper:>16}{measured:>16}")
    return "\n".join(lines)


def main() -> None:
    for title, fn in ALL_EXPERIMENTS.items():
        print(format_rows(title, fn()))
        print()


if __name__ == "__main__":
    main()
