"""Core simulator speed: the three execution tiers, side by side.

``python -m repro.perf.corebench`` times the cycle-stepped core on three
representative workloads -- the E1 Mesa emulator loop, the E2 BitBlt
inner loop, and the E4 fast-I/O display service -- under all three
cycle implementations: the interpretive reference (``INTERPRETED``),
the decoded execution-plan path (``PLAN_ONLY``), and the compiled-trace
tier that PRODUCTION layers on top (``repro.core.tracecache``).  It
writes ``BENCH_core.json`` with the cycles-per-second of each and the
tier-over-tier speedups.  Only the run phase is timed (see
:func:`~repro.perf.measure.measure_staged_rate`): microcode assembly
and machine building are identical across tiers and would otherwise
dilute the comparison.  The simulated cycle counts are asserted
identical across all three runs, so the file doubles as a parity
receipt.

The benchmark runs with no instrumentation-bus subscribers attached, so
it also pins the bus's zero-cost guarantee: an idle bus leaves
``Processor.trace_hook`` as ``None`` and the plan-cache loop pays the
same single check it paid before the bus existed.  ``--baseline`` reruns
the bench and compares against a previously written BENCH_core.json:
simulated cycle counts must match exactly, and each scenario's speedup
must not have regressed below the baseline's by more than the tolerance
(absolute cycles-per-second are host-specific, the speedup *ratio* is
the portable number).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Callable, Dict, List

from ..config import PRODUCTION, MachineConfig
from ..core.processor import Processor
from ..exp.configs import tier_configs
from ..asm.assembler import Assembler
from ..graphics.bitblt import BitBltFunction, build_bitblt_machine, run_bitblt
from ..graphics.bitmap import Bitmap
from ..io.display import DisplayController, display_fast_microcode
from ..types import MUNCH_WORDS
from .measure import measure_staged_rate
from .workloads import mesa_loop_sum

#: Scenario factories return a *stage* callable: calling it builds a
#: fresh machine and returns the zero-arg run callable that simulates
#: and reports cycles.  ``measure_staged_rate`` times only the latter.


def _e1_mesa_loop(config: MachineConfig) -> Callable[[], Callable[[], int]]:
    """E1: the byte-code emulator's load/store/branch loop."""
    def stage() -> Callable[[], int]:
        workload = mesa_loop_sum(200, config=config)
        return workload.run
    return stage


def _e2_bitblt(config: MachineConfig) -> Callable[[], Callable[[], int]]:
    """E2: the BitBlt inner loop (shift-and-merge at full tilt)."""
    def stage() -> Callable[[], int]:
        cpu = build_bitblt_machine(config)
        src = Bitmap(cpu.memory, 0x2000, 31, 32)
        dst = Bitmap(cpu.memory, 0x8000, 30, 32)
        src.load_pattern()
        dst.fill(0)

        def run() -> int:
            return run_bitblt(
                cpu, BitBltFunction.COPY, src_va=0x2000, dst_va=0x8000,
                words_per_row=30, rows=32, src_pitch=31, dst_pitch=30, shift=5,
            )
        return run
    return stage


def _e4_fast_io(config: MachineConfig) -> Callable[[], Callable[[], int]]:
    """E4: the display's fast-I/O munch service, tasking included."""
    def stage() -> Callable[[], int]:
        asm = Assembler(config)
        asm.emit(idle=True)
        display_fast_microcode(asm)
        cpu = Processor(config)
        cpu.load_image(asm.assemble())
        cpu.memory.identity_map()
        display = DisplayController(munch_interval_cycles=8, explicit_notify=False)
        cpu.attach_device(display)
        munches = 128
        for i in range(munches * MUNCH_WORDS):
            cpu.memory.debug_write(0x4000 + i, i & 0xFFFF)
        display.begin_band(cpu, 0x4000, munches)

        def run() -> int:
            cpu.run_until(lambda m: display.done, max_cycles=200_000)
            return cpu.counters.cycles
        return run
    return stage


SCENARIOS: Dict[str, Callable[[MachineConfig], Callable[[], Callable[[], int]]]] = {
    "E1_mesa_loop_sum": _e1_mesa_loop,
    "E2_bitblt_copy": _e2_bitblt,
    "E4_display_fast_io": _e4_fast_io,
}

#: The tiers a corebench row compares, slowest first -- derived from the
#: experiment matrix's tier registry (``repro.exp.configs``) so the
#: bench and the matrix evaluators always mean the same three machines.
TIERS = tuple(tier_configs(PRODUCTION).items())


def run_corebench(repeats: int = 3) -> Dict[str, dict]:
    """Measure every scenario under all three cycle implementations."""
    results: Dict[str, dict] = {}
    for name, make in SCENARIOS.items():
        rates = {
            tier: measure_staged_rate(make(config), repeats=repeats)
            for tier, config in TIERS
        }
        before, after, traced = rates["interp"], rates["plan"], rates["traced"]
        for tier in ("plan", "traced"):
            if rates[tier].cycles != before.cycles:
                raise AssertionError(
                    f"{name}: the {tier} tier changed the simulated cycle "
                    f"count ({before.cycles} != {rates[tier].cycles})"
                )
        results[name] = {
            "simulated_cycles": after.cycles,
            "before_cycles_per_second": round(before.cycles_per_second),
            "after_cycles_per_second": round(after.cycles_per_second),
            "traced_cycles_per_second": round(traced.cycles_per_second),
            "speedup": round(after.cycles_per_second / before.cycles_per_second, 2),
            "traced_speedup": round(
                traced.cycles_per_second / after.cycles_per_second, 2
            ),
        }
    return results


def run_warmstart_bench(repeats: int = 3) -> dict:
    """Reaching the E1 machine's end state: full run versus restore.

    A "cold" start assembles the Mesa emulator microcode, builds the
    machine, and simulates the workload to HALT; a "warm" start restores
    a :class:`~repro.state.MachineState` checkpoint of that end state
    into an existing machine, skipping the simulation entirely.  Every
    cold repeat must simulate the identical cycle count, and the
    restored machine must verify the workload's result -- the restore
    path's correctness receipt.  Wall times are best-of-*repeats*; only
    the cycle count is portable.
    """
    cold_best = float("inf")
    cold_cycles = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        workload = mesa_loop_sum(200)
        cycles = workload.run()
        cold_best = min(cold_best, time.perf_counter() - t0)
        if cold_cycles is not None and cycles != cold_cycles:
            raise AssertionError(
                f"cold runs disagree on the simulated cycle count "
                f"({cold_cycles} != {cycles})"
            )
        cold_cycles = cycles
    cpu = workload.ctx.cpu
    end_state = cpu.snapshot()

    warm_best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        cpu.restore(end_state)
        warm_best = min(warm_best, time.perf_counter() - t0)
    if not workload.verify():
        raise AssertionError("restored machine failed workload verification")
    return {
        "simulated_cycles": cold_cycles,
        "cold_seconds": round(cold_best, 6),
        "warm_restore_seconds": round(warm_best, 6),
        "warm_speedup": round(cold_best / warm_best, 2),
    }


#: Supervision (checkpoint snapshots + sanitizer sweeps) may cost at
#: most this factor in wall-clock over the bare run.  The dominant term
#: is the checkpoint snapshot (a full storage-image copy per interval);
#: the bound is deliberately loose enough for CI noise but tight enough
#: that an accidentally-hot sanitizer (or per-cycle snapshots) fails.
SUPERVISED_OVERHEAD_LIMIT = 8.0


def run_supervised_bench(repeats: int = 3) -> dict:
    """The E1 workload, bare versus supervised: overhead with parity.

    The supervised run carries periodic checkpoints and machine-check
    sweeps but no faults, so it must simulate the *identical* cycle
    count (the supervisor's zero-perturbation guarantee) -- enforced
    here, making the row a correctness receipt as well as a price tag.
    The overhead factor is asserted under ``SUPERVISED_OVERHEAD_LIMIT``.
    """
    from ..supervise import Supervisor

    bare_best = float("inf")
    bare_cycles = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        workload = mesa_loop_sum(200)
        cycles = workload.run()
        bare_best = min(bare_best, time.perf_counter() - t0)
        if bare_cycles is not None and cycles != bare_cycles:
            raise AssertionError(
                f"bare runs disagree on the simulated cycle count "
                f"({bare_cycles} != {cycles})"
            )
        bare_cycles = cycles

    supervised_best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        workload = mesa_loop_sum(200)
        supervisor = Supervisor(
            workload.ctx.cpu, checkpoint_interval=1500, check_interval=256
        )
        cycles = supervisor.run()
        supervised_best = min(supervised_best, time.perf_counter() - t0)
        if cycles != bare_cycles:
            raise AssertionError(
                f"supervision perturbed the simulated cycle count "
                f"({bare_cycles} != {cycles})"
            )
        if not workload.verify():
            raise AssertionError("supervised run failed workload verification")
    overhead = supervised_best / bare_best
    if overhead > SUPERVISED_OVERHEAD_LIMIT:
        raise AssertionError(
            f"supervision overhead {overhead:.2f}x exceeds the "
            f"{SUPERVISED_OVERHEAD_LIMIT}x budget"
        )
    return {
        "simulated_cycles": bare_cycles,
        "bare_seconds": round(bare_best, 6),
        "supervised_seconds": round(supervised_best, 6),
        "overhead_factor": round(overhead, 2),
        "overhead_limit": SUPERVISED_OVERHEAD_LIMIT,
    }


def compare_to_baseline(
    results: Dict[str, dict], baseline: Dict[str, dict], tolerance: float = 0.35
) -> List[str]:
    """Differences that matter between a fresh run and a baseline file.

    Returns human-readable problem strings (empty = clean): a missing
    scenario, a simulated-cycle mismatch (a correctness change, never
    acceptable), or a plan or traced speedup below
    ``base * (1 - tolerance)`` (a perf regression beyond timing noise).
    Baselines that predate the traced tier simply lack its column and
    skip that check -- old files stay usable.  Absolute
    cycles-per-second are deliberately not compared -- they differ per
    host.
    """
    problems: List[str] = []
    for name, base in baseline.items():
        row = results.get(name)
        if row is None:
            problems.append(f"{name}: scenario missing from this run")
            continue
        if row["simulated_cycles"] != base["simulated_cycles"]:
            problems.append(
                f"{name}: simulated cycles changed "
                f"({base['simulated_cycles']} -> {row['simulated_cycles']})"
            )
        for column in ("speedup", "traced_speedup"):
            if column not in base:
                continue
            floor = base[column] * (1.0 - tolerance)
            if row[column] < floor:
                problems.append(
                    f"{name}: {column} regressed ({base[column]}x -> "
                    f"{row[column]}x, floor {floor:.2f}x)"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_core.json",
                        help="where to write the JSON report")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing runs per scenario (best one wins)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="compare against a previous BENCH_core.json; "
                             "exit nonzero on cycle mismatch or speedup regression")
    parser.add_argument("--tolerance", type=float, default=0.35,
                        help="fractional speedup regression allowed vs --baseline")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")
    baseline = baseline_warm = baseline_supervised = None
    if args.baseline is not None:
        try:
            with open(args.baseline) as f:
                doc = json.load(f)
            baseline = doc["workloads"]
            baseline_warm = doc.get("warm_start")
            baseline_supervised = doc.get("supervised_overhead")
        except (OSError, KeyError, ValueError) as exc:
            parser.error(f"cannot read baseline {args.baseline}: {exc}")
    try:
        output = open(args.output, "w")
    except OSError as exc:
        parser.error(f"cannot write {args.output}: {exc}")

    results = run_corebench(repeats=args.repeats)
    warm = run_warmstart_bench(repeats=args.repeats)
    supervised = run_supervised_bench(repeats=args.repeats)
    report = {
        "benchmark": "core simulator cycle rate across the three "
                     "execution tiers (interp, plan, traced)",
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "workloads": results,
        "warm_start": warm,
        "supervised_overhead": supervised,
    }
    with output as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    width = max(len(n) for n in results) + 2
    print(
        f"{'workload':<{width}}{'interp c/s':>12}{'plan c/s':>12}"
        f"{'traced c/s':>12}{'plan x':>8}{'traced x':>9}"
    )
    for name, row in results.items():
        print(
            f"{name:<{width}}{row['before_cycles_per_second']:>12}"
            f"{row['after_cycles_per_second']:>12}"
            f"{row['traced_cycles_per_second']:>12}"
            f"{row['speedup']:>7.2f}x{row['traced_speedup']:>8.2f}x"
        )
    print(
        f"warm start: cold build+run {warm['cold_seconds']*1e3:.1f} ms, "
        f"restore {warm['warm_restore_seconds']*1e3:.1f} ms "
        f"({warm['warm_speedup']:.2f}x)"
    )
    print(
        f"supervision: bare {supervised['bare_seconds']*1e3:.1f} ms, "
        f"supervised {supervised['supervised_seconds']*1e3:.1f} ms "
        f"({supervised['overhead_factor']:.2f}x of "
        f"{supervised['overhead_limit']:.1f}x budget)"
    )
    print(f"wrote {args.output}")
    if baseline is not None:
        problems = compare_to_baseline(results, baseline, tolerance=args.tolerance)
        # Sections a baseline predating them simply lacks are skipped with
        # a warning, never a KeyError -- old baselines stay usable.
        for section, base_row, row in (
            ("warm_start", baseline_warm, warm),
            ("supervised_overhead", baseline_supervised, supervised),
        ):
            if base_row is None:
                print(
                    f"baseline warning: {section} missing from "
                    f"{args.baseline}; skipping its comparison"
                )
            elif row["simulated_cycles"] != base_row.get("simulated_cycles"):
                problems.append(
                    f"{section}: simulated cycles changed "
                    f"({base_row.get('simulated_cycles')} -> "
                    f"{row['simulated_cycles']})"
                )
        if problems:
            for p in problems:
                print(f"BASELINE MISMATCH: {p}")
            return 1
        print(f"baseline {args.baseline}: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
