"""The instrumentation bus: composable, zero-cost-when-empty observability.

The Dorado was debugged and tuned without scope probes -- section 4's
console and the section 7 tables came from microcode counters and
traces.  The simulator's equivalents (:class:`~repro.perf.tracing.
PipelineTracer`, :class:`~repro.perf.measure.OpcodeProfiler`, the fault
injector's trace) used to fight over a single mutable
``Processor.trace_hook`` slot: installing one silently dropped another,
and the profiler additionally monkey-patched ``Ifu.take_dispatch`` with
no teardown.  Following the cycle-accurate-simulator-generation
literature (Reshadi & Dutt, PAPERS.md), instrumentation is now a
first-class layer with a hard rule: **when nothing is attached, the hot
loop pays exactly one ``is None`` check per cycle** -- the same check
the PR 1 plan-cache fast path already carried.

:class:`InstrumentationBus` (one per machine, created lazily by
``Processor.instruments``) keeps *named* subscribers in deterministic
installation order and fans events out to per-kind channels:

``cycle``
    every machine cycle: ``cb(now, task, pc, inst, held)``.  ``inst``
    is the fetched :class:`~repro.core.microword.MicroInstruction` and
    ``task`` the task that executed (or held) this cycle.
``dispatch``
    every IFU NextMacro dispatch: ``cb(now, entry, address)`` with the
    :class:`~repro.ifu.decoder.DecodeEntry` being dispatched and its
    handler microaddress.  Delivered through ``Ifu.dispatch_hook`` --
    no monkey-patching, so detach can never strand a wrapper.
``hold_start`` / ``hold_end``
    derived from the cycle stream per task: ``cb(now, task, pc)`` when
    a task's first held cycle is observed, ``cb(now, task, pc, length)``
    on its first non-held cycle afterwards (*length* = held cycles in
    the span).  Spans are per-task: another task running in between
    does not close a window.
``task_switch``
    ``cb(now, previous_task, task)`` when the executing task changes
    between consecutive cycles.
``fault``
    ``cb(record)`` for every :class:`~repro.fault.plan.FaultRecord`
    the injector appends to its trace (no-op on machines without
    fault injection).

The bus *compiles* the subscriber set into the machine's three
single-callable attachment points (``Processor.trace_hook``,
``Ifu.dispatch_hook``, ``FaultInjector.on_record``) on every
install/uninstall.  A hook assigned directly by outside code (the
pre-bus idiom) is captured as a *foreign* hook and chained after the
bus's subscribers, so legacy callers keep working; when the last
subscriber detaches, the foreign hook -- or ``None`` -- is restored
exactly.

:func:`metrics_snapshot` is the structured export built on the same
counters the bus observes: every :class:`~repro.core.counters.Counters`
field, per-task utilization, and hold-cause attribution, as one
JSON-serializable dict (``python -m repro --metrics-json`` writes it).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

#: Channel names, in the order install() accepts them.  The last four
#: are the recovery channels (DESIGN.md 5.5): they are *published* by
#: the recovery supervisor through :meth:`InstrumentationBus.publish`
#: rather than compiled into the machine's hook slots, so subscribing
#: to them costs the hot loop nothing.
CHANNELS = (
    "cycle", "dispatch", "hold_start", "hold_end", "task_switch", "fault",
    "check_fail", "rollback", "replay", "degrade",
)


class InstrumentationBus:
    """Named multi-subscriber event fan-out for one machine.

    Subscribers are invoked in installation order; installing and
    uninstalling recompiles the machine's hook slots, so the
    zero-subscriber state is literally ``trace_hook is None`` -- the
    plan-cache fast path is untouched when nobody is listening.
    """

    def __init__(self, machine) -> None:
        self.machine = machine
        self._subs: Dict[str, Dict[str, Callable]] = {}
        self._auto = 0
        # Hooks found installed by outside code, chained after ours.
        self._foreign_cycle: Optional[Callable] = None
        self._foreign_dispatch: Optional[Callable] = None
        self._foreign_fault: Optional[Callable] = None
        # The compiled hooks we own (to tell ours from foreign ones).
        self._owned_cycle: Optional[Callable] = None
        self._owned_dispatch: Optional[Callable] = None
        self._owned_fault: Optional[Callable] = None
        # Derived-event state (hold spans per task, last executing task).
        self._last_task: Optional[int] = None
        self._open_holds: Dict[int, List[int]] = {}
        self._hold_start_subs: Tuple[Callable, ...] = ()
        self._hold_end_subs: Tuple[Callable, ...] = ()
        self._task_switch_subs: Tuple[Callable, ...] = ()

    # ------------------------------------------------------------------
    # subscriber management
    # ------------------------------------------------------------------

    def install(
        self,
        name: Optional[str] = None,
        *,
        cycle: Optional[Callable] = None,
        dispatch: Optional[Callable] = None,
        hold_start: Optional[Callable] = None,
        hold_end: Optional[Callable] = None,
        task_switch: Optional[Callable] = None,
        fault: Optional[Callable] = None,
        check_fail: Optional[Callable] = None,
        rollback: Optional[Callable] = None,
        replay: Optional[Callable] = None,
        degrade: Optional[Callable] = None,
    ) -> str:
        """Attach a named subscriber; returns its (possibly generated) name.

        At least one channel callback is required.  Names must be
        unique while installed -- reinstalling under a live name is an
        error, which keeps ordering deterministic and teardown exact.
        """
        channels = {
            key: cb
            for key, cb in zip(
                CHANNELS,
                (cycle, dispatch, hold_start, hold_end, task_switch, fault,
                 check_fail, rollback, replay, degrade),
            )
            if cb is not None
        }
        if not channels:
            raise ValueError("install() needs at least one channel callback")
        if name is None:
            self._auto += 1
            name = f"sub{self._auto}"
        if name in self._subs:
            raise ValueError(f"subscriber {name!r} is already installed")
        self._subs[name] = channels
        self._recompile()
        return name

    def uninstall(self, name: str) -> None:
        """Detach one subscriber and recompile the hook slots."""
        if name not in self._subs:
            raise KeyError(f"no subscriber named {name!r}")
        del self._subs[name]
        self._recompile()

    def uninstall_all(self) -> None:
        self._subs.clear()
        self._recompile()

    def names(self) -> Tuple[str, ...]:
        """Installed subscriber names, in installation (= delivery) order."""
        return tuple(self._subs)

    def __contains__(self, name: str) -> bool:
        return name in self._subs

    def __len__(self) -> int:
        return len(self._subs)

    def publish(self, channel: str, *args) -> None:
        """Deliver an out-of-band event to a channel's subscribers.

        Used by layers *above* the machine cycle -- the recovery
        supervisor publishes ``check_fail``/``rollback``/``replay``/
        ``degrade`` here.  Publishing to a channel with no subscribers
        is free; publishing to an unknown channel is an error.
        """
        if channel not in CHANNELS:
            raise ValueError(f"unknown channel {channel!r}")
        for cb in self._channel(channel):
            cb(*args)

    # ------------------------------------------------------------------
    # compilation: subscriber set -> the machine's three hook slots
    # ------------------------------------------------------------------

    def _channel(self, key: str) -> Tuple[Callable, ...]:
        return tuple(cbs[key] for cbs in self._subs.values() if key in cbs)

    def _recompile(self) -> None:
        machine = self.machine

        # --- cycle channel (and the derived channels built on it) -----
        current = machine.trace_hook
        if current is not None and current is not self._owned_cycle:
            self._foreign_cycle = current  # assigned directly; keep it chained
        self._hold_start_subs = self._channel("hold_start")
        self._hold_end_subs = self._channel("hold_end")
        self._task_switch_subs = self._channel("task_switch")
        derived = bool(
            self._hold_start_subs or self._hold_end_subs or self._task_switch_subs
        )
        sinks: List[Callable] = list(self._channel("cycle"))
        if derived:
            sinks.append(self._derived_tick)
        else:
            self._last_task = None
            self._open_holds.clear()
        foreign = self._foreign_cycle
        if not sinks:
            machine.trace_hook = foreign
            self._owned_cycle = None
        else:
            pipe = machine.pipe
            if foreign is None and len(sinks) == 1:
                only = sinks[0]

                def hook(now, pc, inst, held, _cb=only, _pipe=pipe):
                    _cb(now, _pipe.this_task, pc, inst, held)

            else:
                subs = tuple(sinks)

                def hook(now, pc, inst, held, _subs=subs, _pipe=pipe, _prev=foreign):
                    task = _pipe.this_task
                    for cb in _subs:
                        cb(now, task, pc, inst, held)
                    if _prev is not None:
                        _prev(now, pc, inst, held)

            machine.trace_hook = hook
            self._owned_cycle = hook

        # --- dispatch channel (Ifu.dispatch_hook) ---------------------
        ifu = machine.ifu
        current = ifu.dispatch_hook
        if current is not None and current is not self._owned_dispatch:
            self._foreign_dispatch = current
        d_subs = self._channel("dispatch")
        foreign_d = self._foreign_dispatch
        if not d_subs:
            ifu.dispatch_hook = foreign_d
            self._owned_dispatch = None
        else:

            def dispatch_hook(entry, address, _subs=d_subs, _m=machine, _prev=foreign_d):
                now = _m.now
                for cb in _subs:
                    cb(now, entry, address)
                if _prev is not None:
                    _prev(entry, address)

            ifu.dispatch_hook = dispatch_hook
            self._owned_dispatch = dispatch_hook

        # --- fault channel (FaultInjector.on_record) ------------------
        injector = machine.fault_injector
        if injector is not None:
            current = injector.on_record
            if current is not None and current is not self._owned_fault:
                self._foreign_fault = current
            f_subs = self._channel("fault")
            foreign_f = self._foreign_fault
            if not f_subs:
                injector.on_record = foreign_f
                self._owned_fault = None
            else:

                def fault_hook(record, _subs=f_subs, _prev=foreign_f):
                    for cb in _subs:
                        cb(record)
                    if _prev is not None:
                        _prev(record)

                injector.on_record = fault_hook
                self._owned_fault = fault_hook

    # ------------------------------------------------------------------
    # derived events, synthesized from the cycle stream
    # ------------------------------------------------------------------

    def _derived_tick(self, now, task, pc, inst, held) -> None:
        last = self._last_task
        if last is not None and last != task:
            for cb in self._task_switch_subs:
                cb(now, last, task)
        self._last_task = task
        span = self._open_holds.get(task)
        if held:
            if span is None:
                self._open_holds[task] = [now, 1]
                for cb in self._hold_start_subs:
                    cb(now, task, pc)
            else:
                span[1] += 1
        elif span is not None:
            del self._open_holds[task]
            for cb in self._hold_end_subs:
                cb(now, task, pc, span[1])


# --------------------------------------------------------------------------
# the structured metrics snapshot
# --------------------------------------------------------------------------


def metrics_snapshot(machine, include_fault_trace: bool = True) -> dict:
    """Everything the counters know, as one JSON-serializable dict.

    Layout: raw ``counters`` (every :class:`~repro.core.counters.
    Counters` field), ``tasks`` keyed by task number with per-task
    cycles/instructions/held/utilization, ``holds`` with the per-cause
    attribution (storage-busy vs MEMDATA wait vs IFU wait), ``ifu``
    dispatch statistics, and -- on fault-injected machines -- the
    ``faults`` section with the full trace.
    """
    counters = machine.counters
    config = machine.config
    total = counters.cycles
    tasks = {}
    for task, cycles in enumerate(counters.task_cycles):
        if cycles:
            tasks[str(task)] = {
                "cycles": cycles,
                "instructions": counters.task_instructions[task],
                "held": counters.task_held[task],
                "utilization": cycles / total if total else 0.0,
            }
    snapshot = {
        "schema": "repro.metrics/1",
        "machine": {
            "cycle_ns": config.cycle_ns,
            "plan_cache_enabled": config.plan_cache_enabled,
            "simulated_seconds": config.seconds(total),
        },
        "counters": dataclasses.asdict(counters),
        "tasks": tasks,
        "holds": counters.hold_attribution(),
        "ifu": {"dispatches": machine.ifu.dispatches, "byte_pc": machine.ifu.pc},
        "subscribers": list(machine.instruments.names()),
    }
    injector = machine.fault_injector
    if injector is not None:
        faults = {"pending": injector.pending}
        if include_fault_trace:
            faults["trace"] = [dataclasses.asdict(r) for r in injector.trace]
        snapshot["faults"] = faults
    return snapshot
