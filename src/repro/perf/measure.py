"""Per-macroinstruction-class profiling.

The paper's section 7 reports emulator costs per *class* of
macroinstruction ("a load or store instruction takes only one or two
microinstructions in Mesa, and five in Lisp...").  The
:class:`OpcodeProfiler` measures exactly that: it watches the IFU
dispatch stream and attributes every executed (and held) task-0 cycle to
the macroinstruction whose handler is running.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..emulators.isa import EmulatorContext
from ..types import EMULATOR_TASK


@dataclass
class SimulationRate:
    """Wall-clock speed of the simulator itself over one scenario."""

    cycles: int      #: simulated machine cycles the scenario executed
    seconds: float   #: host wall-clock time of the best run

    @property
    def cycles_per_second(self) -> float:
        return self.cycles / self.seconds if self.seconds > 0 else 0.0


def measure_simulation_rate(
    scenario: Callable[[], int], repeats: int = 3
) -> SimulationRate:
    """Time *scenario* (which returns simulated cycles) on the host.

    The scenario is run *repeats* times and the fastest run wins, the
    usual defense against interference from the rest of the host.  This
    measures the simulator, not the Dorado: the cycle counts it divides
    by are identical whichever cycle implementation runs (see
    ``tests/test_fastpath_parity.py``); only the seconds change.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    best: Optional[SimulationRate] = None
    for _ in range(repeats):
        start = time.perf_counter()
        cycles = scenario()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best.seconds:
            best = SimulationRate(cycles=cycles, seconds=elapsed)
    return best


@dataclass
class OpcodeStats:
    """Accumulated cost of one opcode class."""

    dispatches: int = 0
    microinstructions: int = 0
    cycles: int = 0  #: includes held cycles (memory/IFU waits)

    @property
    def mean_microinstructions(self) -> float:
        return self.microinstructions / self.dispatches if self.dispatches else 0.0

    @property
    def mean_cycles(self) -> float:
        return self.cycles / self.dispatches if self.dispatches else 0.0


class OpcodeProfiler:
    """Attribute task-0 execution to macroinstruction classes.

    Attach before running; the emulator's trace hook and a wrapper on
    the IFU dispatch mark the boundaries.  The microinstruction that
    *performs* the NextMacro is charged to the instruction it finishes.
    """

    def __init__(self, ctx: EmulatorContext) -> None:
        self.ctx = ctx
        self.stats: Dict[str, OpcodeStats] = {}
        self._current: Optional[str] = None
        self._pending_name: Optional[str] = None
        self._install()

    def _install(self) -> None:
        cpu = self.ctx.cpu
        ifu = cpu.ifu
        original_take = ifu.take_dispatch
        profiler = self

        def wrapped_take():
            entry = ifu._head  # the instruction being dispatched
            address = original_take()
            profiler._pending_name = entry.name
            return address

        ifu.take_dispatch = wrapped_take

        def hook(now, pc, inst, held):
            del now, pc, inst
            name = profiler._current
            if name is not None and cpu.pipe.this_task == EMULATOR_TASK:
                stats = profiler.stats.setdefault(name, OpcodeStats())
                stats.cycles += 1
                if not held:
                    stats.microinstructions += 1
            if profiler._pending_name is not None and not held:
                # The dispatch we saw during this cycle takes effect now.
                nxt = profiler._pending_name
                profiler._pending_name = None
                profiler._current = nxt
                profiler.stats.setdefault(nxt, OpcodeStats()).dispatches += 1

        cpu.trace_hook = hook

    def table(self) -> Dict[str, OpcodeStats]:
        return dict(self.stats)

    def mean(self, name: str) -> OpcodeStats:
        return self.stats.get(name, OpcodeStats())

    def class_mean(self, names) -> float:
        """Mean microinstructions across several opcode classes."""
        total_u = sum(self.stats[n].microinstructions for n in names if n in self.stats)
        total_d = sum(self.stats[n].dispatches for n in names if n in self.stats)
        return total_u / total_d if total_d else 0.0

    def class_cycles(self, names) -> float:
        total_c = sum(self.stats[n].cycles for n in names if n in self.stats)
        total_d = sum(self.stats[n].dispatches for n in names if n in self.stats)
        return total_c / total_d if total_d else 0.0
