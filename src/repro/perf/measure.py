"""Per-macroinstruction-class profiling.

The paper's section 7 reports emulator costs per *class* of
macroinstruction ("a load or store instruction takes only one or two
microinstructions in Mesa, and five in Lisp...").  The
:class:`OpcodeProfiler` measures exactly that: it watches the IFU
dispatch stream and attributes every executed (and held) task-0 cycle to
the macroinstruction whose handler is running.

The profiler is a subscriber on the machine's instrumentation bus
(:class:`~repro.perf.instrument.InstrumentationBus`): it listens on the
``dispatch`` channel (the IFU's first-class ``dispatch_hook`` -- no
monkey-patching of ``take_dispatch``) and the ``cycle`` channel, so it
composes with a :class:`~repro.perf.tracing.PipelineTracer` or any
other subscriber in either attach order, and :meth:`uninstall` leaves
the machine exactly as found.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..emulators.isa import EmulatorContext
from ..types import EMULATOR_TASK


@dataclass
class SimulationRate:
    """Wall-clock speed of the simulator itself over one scenario."""

    cycles: int      #: simulated machine cycles the scenario executed
    seconds: float   #: host wall-clock time of the best run

    @property
    def cycles_per_second(self) -> float:
        return self.cycles / self.seconds if self.seconds > 0 else 0.0


def measure_simulation_rate(
    scenario: Callable[[], int], repeats: int = 3
) -> SimulationRate:
    """Time *scenario* (which returns simulated cycles) on the host.

    The scenario is run *repeats* times and the fastest run wins, the
    usual defense against interference from the rest of the host.  This
    measures the simulator, not the Dorado: the cycle counts it divides
    by are identical whichever cycle implementation runs (see
    ``tests/test_fastpath_parity.py``); only the seconds change.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")

    def timed_run() -> SimulationRate:
        start = time.perf_counter()
        cycles = scenario()
        return SimulationRate(cycles=cycles, seconds=time.perf_counter() - start)

    best = timed_run()
    for _ in range(repeats - 1):
        candidate = timed_run()
        if candidate.seconds < best.seconds:
            best = candidate
    return best


def measure_staged_rate(
    stage: Callable[[], Callable[[], int]], repeats: int = 3
) -> SimulationRate:
    """Time only the *run* phase of a two-phase scenario.

    *stage* builds a fresh machine (assembling microcode, loading
    images, arming devices) and returns a zero-arg run callable that
    simulates and returns the cycle count; only that callable is timed.
    Build cost is identical whichever cycle implementation runs, so
    excluding it keeps a tier comparison about the tiers -- corebench
    reports build cost separately through its warm-start row.  Best of
    *repeats*, each on a fresh machine.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")

    def timed_run() -> SimulationRate:
        run = stage()
        start = time.perf_counter()
        cycles = run()
        return SimulationRate(cycles=cycles, seconds=time.perf_counter() - start)

    best = timed_run()
    for _ in range(repeats - 1):
        candidate = timed_run()
        if candidate.seconds < best.seconds:
            best = candidate
    return best


@dataclass
class OpcodeStats:
    """Accumulated cost of one opcode class."""

    dispatches: int = 0
    microinstructions: int = 0
    cycles: int = 0  #: includes held cycles (memory/IFU waits)

    @property
    def mean_microinstructions(self) -> float:
        return self.microinstructions / self.dispatches if self.dispatches else 0.0

    @property
    def mean_cycles(self) -> float:
        return self.cycles / self.dispatches if self.dispatches else 0.0


class OpcodeProfiler:
    """Attribute task-0 execution to macroinstruction classes.

    Constructing one attaches it (the historical behaviour benchmarks
    rely on); :meth:`uninstall` detaches it and restores the bus and
    IFU hook state exactly.  The microinstruction that *performs* the
    NextMacro is charged to the instruction it finishes.
    """

    def __init__(self, ctx: EmulatorContext) -> None:
        self.ctx = ctx
        self.stats: Dict[str, OpcodeStats] = {}
        self._current: Optional[str] = None
        self._pending_name: Optional[str] = None
        self._installed = False
        self._name: Optional[str] = None
        self.install()

    def install(self) -> "OpcodeProfiler":
        if not self._installed:
            self._name = self.ctx.cpu.instruments.install(
                cycle=self._on_cycle, dispatch=self._on_dispatch
            )
            self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            self.ctx.cpu.instruments.uninstall(self._name)
            self._installed = False
            self._name = None

    # --- bus subscribers ----------------------------------------------------

    def _on_dispatch(self, now: int, entry, address: int) -> None:
        del now, address
        self._pending_name = entry.name

    def _on_cycle(self, now: int, task: int, pc: int, inst, held: bool) -> None:
        del now, pc, inst
        name = self._current
        if name is not None and task == EMULATOR_TASK:
            stats = self.stats.setdefault(name, OpcodeStats())
            stats.cycles += 1
            if not held:
                stats.microinstructions += 1
        if self._pending_name is not None and not held:
            # The dispatch we saw during this cycle takes effect now.
            nxt = self._pending_name
            self._pending_name = None
            self._current = nxt
            self.stats.setdefault(nxt, OpcodeStats()).dispatches += 1

    # --- results ------------------------------------------------------------

    def table(self) -> Dict[str, OpcodeStats]:
        return dict(self.stats)

    def mean(self, name: str) -> OpcodeStats:
        return self.stats.get(name, OpcodeStats())

    def class_mean(self, names) -> float:
        """Mean microinstructions across several opcode classes."""
        total_u = sum(self.stats[n].microinstructions for n in names if n in self.stats)
        total_d = sum(self.stats[n].dispatches for n in names if n in self.stats)
        return total_u / total_d if total_d else 0.0

    def class_cycles(self, names) -> float:
        total_c = sum(self.stats[n].cycles for n in names if n in self.stats)
        total_d = sum(self.stats[n].dispatches for n in names if n in self.stats)
        return total_c / total_d if total_d else 0.0
