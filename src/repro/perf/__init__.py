"""Performance measurement: workloads, profilers, and the paper harness.

:mod:`workloads` builds ready-to-run byte-code scenarios per emulator;
:mod:`measure` profiles microinstructions/cycles per macroinstruction
class; :mod:`instrument` is the instrumentation bus every observer
attaches through (plus the structured metrics snapshot); :mod:`report`
regenerates every quantitative claim of the paper's section 7 (see
EXPERIMENTS.md for the paper-vs-measured record).
"""

from .instrument import InstrumentationBus, metrics_snapshot
from .measure import OpcodeProfiler
from .tracing import PipelineTracer
from .workloads import Workload

__all__ = [
    "InstrumentationBus",
    "OpcodeProfiler",
    "PipelineTracer",
    "Workload",
    "metrics_snapshot",
]
