"""Cycle-by-cycle execution tracing and timeline rendering.

The Dorado was debugged without scope probes on most signals
(section 4) -- the console and microcode counters carried the load.
:class:`PipelineTracer` is the simulator's version: it records every
cycle's (task, microaddress, held) triple and renders per-task timelines
like::

    task  0 emulator  ################hhhh####....########
    task 13 disk      ................####................

which makes Hold windows and task multiplexing visible at a glance.

The tracer is one subscriber on the machine's instrumentation bus
(:class:`~repro.perf.instrument.InstrumentationBus`): it composes with
the :class:`~repro.perf.measure.OpcodeProfiler`, fault listeners, and
any other subscriber in either attach order, and detaching it restores
whatever was installed before.  The record store is a
``collections.deque(maxlen=...)``, so a bounded window costs O(1) per
cycle instead of a per-cycle memmove.

Faulted runs (DESIGN.md section 5.2) leave a second kind of record: the
:class:`~repro.fault.plan.FaultRecord` entries the injector appends to
its trace.  :func:`format_fault_trace` renders those the same way the
timeline renders cycles, so ``repro.perf.report`` can summarize what
went wrong and what the machine did about it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..fault.plan import FaultRecord


@dataclass(frozen=True)
class TraceRecord:
    cycle: int
    task: int
    pc: int
    held: bool


class PipelineTracer:
    """Attachable cycle recorder.

    Attach with :meth:`install`; every subsequent ``Processor.step``
    appends a :class:`TraceRecord`.  Recording a bounded window keeps
    long runs cheap: set *max_records* and the earliest records are
    dropped (the timeline renders whatever remains).
    """

    def __init__(self, machine, max_records: int = 100_000) -> None:
        self.machine = machine
        self.max_records = max_records
        self.records: Deque[TraceRecord] = deque(maxlen=max_records)
        self._installed = False
        self._name: Optional[str] = None

    def install(self) -> "PipelineTracer":
        if not self._installed:
            self._name = self.machine.instruments.install(cycle=self._on_cycle)
            self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            self.machine.instruments.uninstall(self._name)
            self._installed = False
            self._name = None

    def _on_cycle(self, now: int, task: int, pc: int, inst, held: bool) -> None:
        self.records.append(TraceRecord(now, task, pc, held))

    # --- analysis ----------------------------------------------------------

    def tasks_seen(self) -> List[int]:
        return sorted({r.task for r in self.records})

    def cycles_by_task(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for r in self.records:
            counts[r.task] = counts.get(r.task, 0) + 1
        return counts

    def holds_by_task(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for r in self.records:
            if r.held:
                counts[r.task] = counts.get(r.task, 0) + 1
        return counts

    def hold_windows(self, task: int) -> List[Tuple[int, int]]:
        """Contiguous held spans for *task*: (start_cycle, length).

        A span is a run of consecutive *task* records that are held.
        Records from other tasks are ignored entirely -- a multiplexed
        machine interleaves other tasks' cycles inside a hold window
        (that overlap is the whole point of Hold, section 5.7), and
        such interleaving must not split the window.
        """
        windows: List[Tuple[int, int]] = []
        start: Optional[int] = None
        length = 0
        for r in self.records:
            if r.task != task:
                continue
            if r.held:
                if start is None:
                    start = r.cycle
                    length = 1
                else:
                    length += 1
            elif start is not None:
                windows.append((start, length))
                start = None
        if start is not None:
            windows.append((start, length))
        return windows

    def timeline(self, width: int = 72, labels: Optional[Dict[int, str]] = None) -> str:
        """Per-task activity strip: '#' running, 'h' held, '.' idle."""
        if not self.records:
            return "(no records)"
        labels = labels or {}
        first = self.records[0].cycle
        last = self.records[-1].cycle
        span = max(1, last - first + 1)
        scale = min(1.0, width / span)
        columns = min(width, span)
        rows: Dict[int, List[str]] = {}
        for r in self.records:
            column = min(columns - 1, int((r.cycle - first) * scale))
            row = rows.setdefault(r.task, ["."] * columns)
            mark = "h" if r.held else "#"
            if row[column] != "h":  # holds dominate a bucket
                row[column] = mark
        lines = [f"cycles {first}..{last}"]
        for task in sorted(rows):
            name = labels.get(task, f"task {task:2d}")
            lines.append(f"{name:<14s}{''.join(rows[task])}")
        return "\n".join(lines)


def format_fault_trace(records: Sequence[FaultRecord]) -> str:
    """Render an injector's fault trace, one event per line::

        cycle     38  storage  ecc_correctable   @0x4006  single-bit error...
    """
    if not records:
        return "(no fault events)"
    lines = []
    for r in records:
        lines.append(
            f"cycle {r.cycle:>8d}  {r.component:<8s} {r.kind:<18s}"
            f"@{r.address:#06x}  {r.detail}"
        )
    return "\n".join(lines)
