"""Shared word-level helpers and machine constants.

The Dorado is a 16-bit machine: "Most data paths are sixteen bits wide"
(paper, section 4).  All register and bus values in the simulator are
plain Python ints kept in the range ``0 <= v < 2**16``; the helpers here
centralize masking, sign interpretation, and byte surgery so the rest of
the code never open-codes ``& 0xFFFF``.
"""

from __future__ import annotations

WORD_BITS = 16
WORD_MASK = 0xFFFF
WORD_SIZE = 1 << WORD_BITS  # 65536

BYTE_MASK = 0xFF

#: Number of microcode priority levels ("tasks"), paper section 5.1.
NUM_TASKS = 16

#: Task 0 runs the emulator and is the lowest priority (section 5.1).
EMULATOR_TASK = 0

#: Words per memory "munch" -- the 16-word block moved by the fast I/O
#: system and by cache fills (section 5.8).
MUNCH_WORDS = 16


def word(value: int) -> int:
    """Truncate *value* to an unsigned 16-bit word (two's complement wrap)."""
    return value & WORD_MASK


def signed(value: int) -> int:
    """Interpret a 16-bit word as a two's-complement signed integer."""
    value &= WORD_MASK
    return value - WORD_SIZE if value & 0x8000 else value


def from_signed(value: int) -> int:
    """Encode a signed integer (-32768..32767 after wrap) as a 16-bit word."""
    return value & WORD_MASK


def low_byte(value: int) -> int:
    """The low-order 8 bits of a word."""
    return value & BYTE_MASK


def high_byte(value: int) -> int:
    """The high-order 8 bits of a word."""
    return (value >> 8) & BYTE_MASK


def make_word(high: int, low: int) -> int:
    """Assemble a word from two bytes."""
    return ((high & BYTE_MASK) << 8) | (low & BYTE_MASK)


def bit(value: int, position: int) -> int:
    """Bit *position* of *value* (0 = least significant), as 0 or 1."""
    return (value >> position) & 1


def field(value: int, high: int, low: int) -> int:
    """Extract bits ``high..low`` inclusive (0 = least significant)."""
    width = high - low + 1
    return (value >> low) & ((1 << width) - 1)


def rotate_left_32(value: int, amount: int) -> int:
    """Left cycle of a 32-bit quantity, as the barrel shifter does."""
    amount %= 32
    value &= 0xFFFFFFFF
    return ((value << amount) | (value >> (32 - amount))) & 0xFFFFFFFF


def ones_mask(width: int) -> int:
    """A mask of *width* one-bits in the low-order positions."""
    if width <= 0:
        return 0
    return (1 << width) - 1
