"""The Dorado memory system substrate (Clark et al., reference [1]).

The processor paper depends on a memory system with a cache ("delivers
a word in two cycles, and can deliver a word every cycle"), a map from
16-bit displacements plus 28-bit base registers to real storage, main
storage that cycles every eight processor cycles, and a fast-I/O path
that moves 16-word munches between storage and devices without
polluting the cache.  This subpackage implements all of it.
"""

from .cache import Cache
from .map import AddressTranslator, MapEntry
from .pipeline import MemorySystem
from .storage import Storage

__all__ = ["AddressTranslator", "Cache", "MapEntry", "MemorySystem", "Storage"]
