"""The processor cache.

Section 3: "There is also a cache which has a latency of two cycles, and
can deliver a word every cycle."  Lines hold one 16-word munch; the
cache is set-associative with LRU replacement and write-back/write-
allocate policy (dirty munches return to storage on eviction), matching
the memory-system paper.  The fast I/O system deliberately bypasses this
cache; :meth:`flush_munch` and :meth:`invalidate_munch` keep it
consistent when fast I/O touches a munch the cache holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import ConfigError
from ..types import MUNCH_WORDS, word


@dataclass
class CacheLine:
    valid: bool = False
    dirty: bool = False
    tag: int = -1
    words: List[int] = field(default_factory=lambda: [0] * MUNCH_WORDS)
    lru: int = 0


class Cache:
    """Set-associative munch cache with write-back and LRU."""

    def __init__(self, lines: int, ways: int) -> None:
        if lines <= 0 or ways <= 0 or lines % ways:
            raise ConfigError(f"cannot build {lines} lines as {ways} ways")
        self.num_sets = lines // ways
        self.ways = ways
        self.sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(ways)] for _ in range(self.num_sets)
        ]
        self._clock = 0

    def _locate(self, address: int) -> Tuple[int, int]:
        """(set index, tag) for a real word address."""
        munch = address // MUNCH_WORDS
        return munch % self.num_sets, munch // self.num_sets

    def lookup(self, address: int) -> Optional[CacheLine]:
        """The line holding *address*, updating LRU, or None on miss."""
        munch = address // MUNCH_WORDS
        tag = munch // self.num_sets
        for line in self.sets[munch % self.num_sets]:
            if line.valid and line.tag == tag:
                self._clock += 1
                line.lru = self._clock
                return line
        return None

    def contains(self, address: int) -> bool:
        index, tag = self._locate(address)
        return any(line.valid and line.tag == tag for line in self.sets[index])

    def read_word(self, address: int) -> int:
        """Word read on a known hit."""
        line = self.lookup(address)
        assert line is not None, "read_word requires a hit"
        return line.words[address % MUNCH_WORDS]

    def write_word(self, address: int, value: int) -> None:
        """Word write on a known hit; marks the line dirty."""
        line = self.lookup(address)
        assert line is not None, "write_word requires a hit"
        line.words[address % MUNCH_WORDS] = word(value)
        line.dirty = True

    def fill(self, address: int, words: List[int]) -> Optional[Tuple[int, List[int]]]:
        """Install a munch, evicting the LRU way.

        Returns ``(victim_base_address, victim_words)`` when a dirty
        munch must be written back to storage, else None.
        """
        index, tag = self._locate(address)
        victim = min(self.sets[index], key=lambda line: line.lru)
        writeback = None
        if victim.valid and victim.dirty:
            victim_munch = victim.tag * self.num_sets + index
            writeback = (victim_munch * MUNCH_WORDS, list(victim.words))
        victim.valid = True
        victim.dirty = False
        victim.tag = tag
        victim.words = [word(w) for w in words]
        self._clock += 1
        victim.lru = self._clock
        return writeback

    def flush_munch(self, address: int) -> Optional[List[int]]:
        """Write-back-and-keep: returns the words if the line was dirty.

        Used before a fast-I/O read of a munch the cache holds dirty, so
        the device sees current data.
        """
        line = self.lookup(address)
        if line is None or not line.dirty:
            return None
        line.dirty = False
        return list(line.words)

    def invalidate_munch(self, address: int) -> bool:
        """Drop the line holding *address* (after a fast-I/O write)."""
        index, tag = self._locate(address)
        for line in self.sets[index]:
            if line.valid and line.tag == tag:
                line.valid = False
                line.dirty = False
                return True
        return False

    def invalidate_all(self) -> None:
        for cache_set in self.sets:
            for line in cache_set:
                line.valid = False
                line.dirty = False

    def stats(self) -> Tuple[int, int]:
        """(valid lines, dirty lines) -- for tests."""
        valid = sum(line.valid for s in self.sets for line in s)
        dirty = sum(line.dirty for s in self.sets for line in s)
        return valid, dirty

    # --- snapshot protocol (DESIGN.md section 5.4) -------------------------

    def state_dict(self) -> dict:
        """Every line (data, tags, flags) plus the LRU clock."""
        return {
            "clock": self._clock,
            "sets": [
                [
                    {
                        "valid": line.valid,
                        "dirty": line.dirty,
                        "tag": line.tag,
                        "words": list(line.words),
                        "lru": line.lru,
                    }
                    for line in cache_set
                ]
                for cache_set in self.sets
            ],
        }

    def load_state(self, state: dict) -> None:
        stored = state["sets"]
        if len(stored) != self.num_sets or any(len(s) != self.ways for s in stored):
            raise ConfigError(
                f"cache snapshot geometry does not match "
                f"{self.num_sets} sets x {self.ways} ways"
            )
        self._clock = state["clock"]
        self.sets = [
            [
                CacheLine(
                    valid=bool(d["valid"]),
                    dirty=bool(d["dirty"]),
                    tag=d["tag"],
                    words=list(d["words"]),
                    lru=d["lru"],
                )
                for d in cache_set
            ]
            for cache_set in stored
        ]
