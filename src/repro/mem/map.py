"""Virtual address formation and the page map.

Section 6.3.2: "MEMADDRESS provides a sixteen bit displacement, which is
added to a 28 bit base register in the memory system to form a virtual
address."  MEMBASE (5 bits) selects one of 32 base registers.  The
virtual address is then translated by a page map to a real storage
address; the map holds per-page write-protect and valid bits, and
latches dirty/referenced bits the way the real map hardware did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ConfigError
from ..types import word

#: Words per virtual/real page for map purposes.
PAGE_WORDS = 256
PAGE_SHIFT = 8

#: Map-entry flag bits, as packed into the 16-bit word microcode sees
#: through FF ``READ_MAP`` / ``MAP_WRITE``.
FLAG_VALID = 0x8000
FLAG_WRITE_PROTECT = 0x4000
FLAG_DIRTY = 0x2000
FLAG_REFERENCED = 0x1000
REAL_PAGE_MASK = 0x0FFF


@dataclass
class MapEntry:
    """One page-map entry."""

    real_page: int = 0
    valid: bool = False
    write_protected: bool = False
    dirty: bool = False
    referenced: bool = False

    def encode(self) -> int:
        """Pack into the 16-bit representation used on the B bus."""
        value = self.real_page & REAL_PAGE_MASK
        if self.valid:
            value |= FLAG_VALID
        if self.write_protected:
            value |= FLAG_WRITE_PROTECT
        if self.dirty:
            value |= FLAG_DIRTY
        if self.referenced:
            value |= FLAG_REFERENCED
        return value

    @staticmethod
    def decode(value: int) -> "MapEntry":
        value = word(value)
        return MapEntry(
            real_page=value & REAL_PAGE_MASK,
            valid=bool(value & FLAG_VALID),
            write_protected=bool(value & FLAG_WRITE_PROTECT),
            dirty=bool(value & FLAG_DIRTY),
            referenced=bool(value & FLAG_REFERENCED),
        )


class AddressTranslator:
    """Base registers plus the page map."""

    def __init__(self, num_base_registers: int, base_register_bits: int) -> None:
        if num_base_registers <= 0:
            raise ConfigError("need at least one base register")
        self._base_mask = (1 << base_register_bits) - 1
        self.bases = [0] * num_base_registers
        self.map: Dict[int, MapEntry] = {}
        #: One-shot injected fault, armed by the memory pipeline right
        #: before a timed reference translates (fault injection,
        #: DESIGN.md section 5.2).  A spurious map or write-protect
        #: fault makes this one translation fail as if the map RAM had
        #: misread; the entry itself is untouched, so the next
        #: reference succeeds.  Untimed debug reads never see it.
        self.inject_next = None

    # --- base registers ----------------------------------------------------

    def write_base_low(self, index: int, value: int) -> None:
        """FF ``BASE_LO_B``: the low 16 bits of a base register."""
        index %= len(self.bases)
        self.bases[index] = (self.bases[index] & ~0xFFFF | word(value)) & self._base_mask

    def write_base_high(self, index: int, value: int) -> None:
        """FF ``BASE_HI_B``: the bits above 16 of a base register."""
        index %= len(self.bases)
        low = self.bases[index] & 0xFFFF
        self.bases[index] = ((word(value) << 16) | low) & self._base_mask

    def read_base(self, index: int) -> int:
        return self.bases[index % len(self.bases)]

    def virtual_address(self, membase: int, displacement: int) -> int:
        """VA = base register + 16-bit displacement (section 6.3.2)."""
        bases = self.bases
        return (bases[membase % len(bases)] + (displacement & 0xFFFF)) & self._base_mask

    # --- the page map --------------------------------------------------------

    def map_write(self, virtual_page: int, encoded: int) -> None:
        """FF ``MAP_WRITE``: install a map entry."""
        self.map[virtual_page] = MapEntry.decode(encoded)

    def map_read(self, virtual_page: int) -> int:
        """FF ``READ_MAP``: the encoded entry (zero when absent/invalid)."""
        entry = self.map.get(virtual_page)
        return entry.encode() if entry else 0

    def entry_for(self, va: int) -> Optional[MapEntry]:
        return self.map.get(va >> PAGE_SHIFT)

    def translate(self, va: int, write: bool) -> Optional[int]:
        """VA to real address, or None on a map/write-protect fault.

        Sets the referenced bit on any successful translation and the
        dirty bit on a successful write, as the map hardware does.
        """
        if self.inject_next is not None:
            self.inject_next = None
            return None
        entry = self.map.get(va >> PAGE_SHIFT)
        if entry is None or not entry.valid:
            return None
        if write and entry.write_protected:
            return None
        entry.referenced = True
        if write:
            entry.dirty = True
        return (entry.real_page << PAGE_SHIFT) | (va & (PAGE_WORDS - 1))

    # --- snapshot protocol (DESIGN.md section 5.4) -------------------------

    def state_dict(self) -> dict:
        """Base registers, the map, and the one-shot armed fault."""
        inject = self.inject_next
        return {
            "bases": list(self.bases),
            "map": {
                page: [
                    entry.real_page,
                    entry.valid,
                    entry.write_protected,
                    entry.dirty,
                    entry.referenced,
                ]
                for page, entry in self.map.items()
            },
            "inject_next": inject.value if inject is not None else None,
        }

    def load_state(self, state: dict) -> None:
        self.bases = list(state["bases"])
        self.map = {
            page: MapEntry(
                real_page=fields[0],
                valid=bool(fields[1]),
                write_protected=bool(fields[2]),
                dirty=bool(fields[3]),
                referenced=bool(fields[4]),
            )
            for page, fields in state["map"].items()
        }
        inject = state["inject_next"]
        if inject is None:
            self.inject_next = None
        else:
            from ..fault.plan import FaultKind
            self.inject_next = FaultKind(inject)

    def identity_map(self, pages: int, write_protected_pages: int = 0) -> None:
        """Map virtual pages 0..pages-1 straight through (setup helper)."""
        for page in range(pages):
            self.map[page] = MapEntry(
                real_page=page,
                valid=True,
                write_protected=page < write_protected_pages,
            )
