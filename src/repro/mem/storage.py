"""Main storage.

"In addition there are up to 4 storage modules, with about 300 16K or
64K RAMS ... for a maximum of 8 megabytes" (section 1).  Storage is
organized in 16-word munches; "The maximum rate at which storage
references can be made is one every eight cycles (this is the cycle
time of our storage RAMS)" (section 6.2.1) -- the timing lives in
:mod:`repro.mem.pipeline`; this module is the RAM array itself.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ConfigError
from ..types import MUNCH_WORDS, word


class Storage:
    """A flat array of 16-bit words, addressed by real address."""

    def __init__(self, words: int) -> None:
        if words <= 0 or words % MUNCH_WORDS:
            raise ConfigError(f"storage size {words} must be a positive multiple of {MUNCH_WORDS}")
        self.size = words
        self._data: List[int] = [0] * words
        #: Optional ECC model on the munch read path; the memory system
        #: installs an :class:`~repro.fault.injector.EccFilter` here
        #: when fault injection is configured.  The stored data is never
        #: modified -- errors happen "on the wires".
        self.ecc = None

    def in_range(self, address: int) -> bool:
        return 0 <= address < self.size

    def read_word(self, address: int) -> int:
        return self._data[address]

    def write_word(self, address: int, value: int) -> None:
        self._data[address] = word(value)

    @staticmethod
    def munch_base(address: int) -> int:
        """The first word address of the munch containing *address*."""
        return address & ~(MUNCH_WORDS - 1)

    def read_munch(self, address: int) -> List[int]:
        """The 16 words of the munch containing *address*."""
        base = self.munch_base(address)
        data = self._data[base : base + MUNCH_WORDS]
        if self.ecc is not None:
            data = self.ecc.filter_read(base, data)
        return data

    def write_munch(self, address: int, values: Sequence[int]) -> None:
        if len(values) != MUNCH_WORDS:
            raise ConfigError(f"a munch is {MUNCH_WORDS} words, got {len(values)}")
        base = self.munch_base(address)
        self._data[base : base + MUNCH_WORDS] = [word(v) for v in values]

    def load(self, address: int, values: Sequence[int]) -> None:
        """Bulk image load (program/bitmap setup; not a timed operation)."""
        if address < 0 or address + len(values) > self.size:
            raise ConfigError(
                f"load of {len(values)} words at {address} exceeds storage of {self.size}"
            )
        self._data[address : address + len(values)] = [word(v) for v in values]

    def dump(self, address: int, count: int) -> List[int]:
        """Bulk image read (for tests and verification)."""
        return self._data[address : address + count]

    # --- snapshot protocol (DESIGN.md section 5.4) -------------------------

    def state_dict(self) -> dict:
        """The full RAM image; ``ecc`` is a hook, ``size`` is config."""
        return {"data": list(self._data)}

    def load_state(self, state: dict) -> None:
        data = state["data"]
        if len(data) != self.size:
            raise ConfigError(
                f"storage image of {len(data)} words does not fit a "
                f"{self.size}-word array"
            )
        self._data = list(data)
