"""The memory-system pipeline: timing, Hold, and per-task MEMDATA.

This is the face the processor sees (section 5.7): references start
from microinstructions and complete on their own schedule; "the memory
keeps track of when data is ready" and the processor consults
:meth:`MemorySystem.md_ready` / the ``start_*`` return values to decide
Hold.  Nothing here ever blocks the simulation -- a reference that
cannot start simply reports it, and the held instruction retries.

Timing model (constants from :class:`~repro.config.MachineConfig`):

* cache hit: MEMDATA ready ``cache_hit_cycles`` after the Fetch;
* cache miss: storage is occupied for one ``storage_cycle`` starting
  when it is free, and MEMDATA is ready ``miss_penalty`` cycles after
  the reference starts (plus any wait for storage);
* dirty evictions and fast-I/O cache flushes occupy storage for one
  additional cycle each;
* at most one reference per task is outstanding; a new storage
  reference can start each storage cycle ("fully segmented
  pipelining", section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..config import MachineConfig
from ..errors import DeviceError
from ..fault.injector import FaultInjector
from ..fault.plan import FaultKind, InjectionPlan
from ..types import MUNCH_WORDS, NUM_TASKS, word
from ..core.counters import Counters
from .cache import Cache
from .fastio import FastPort, FastTransfer
from .map import PAGE_SHIFT, AddressTranslator
from .storage import Storage

# Fault-latch bits (FF READ_FAULTS / EXTB_FAULTS).  The stack-error
# byte (overflow in 3:0, underflow in 7:4) is merged in by the
# processor at bit 3, occupying 0x8..0x400; the storage (double-bit
# ECC) bit sits above it.
FAULT_MAP = 0x1
FAULT_WRITE_PROTECT = 0x2
FAULT_BOUNDS = 0x4
FAULT_STORAGE = 0x800


@dataclass
class _TaskRef:
    """Per-task reference state (the task-specific MEMDATA register)."""

    busy_until: int = 0   #: cycle when the task may start another reference
    md_ready_at: int = 0  #: cycle when MEMDATA becomes usable
    md_value: int = 0
    md_valid: bool = False

    def state_dict(self) -> dict:
        return {
            "busy_until": self.busy_until,
            "md_ready_at": self.md_ready_at,
            "md_value": self.md_value,
            "md_valid": self.md_valid,
        }

    def load_state(self, state: dict) -> None:
        self.busy_until = state["busy_until"]
        self.md_ready_at = state["md_ready_at"]
        self.md_value = state["md_value"]
        self.md_valid = bool(state["md_valid"])


class MemorySystem:
    """Cache + map + storage behind the Hold-based interface."""

    def __init__(self, config: MachineConfig, counters: Optional[Counters] = None) -> None:
        self.config = config
        self.counters = counters if counters is not None else Counters()
        self.translator = AddressTranslator(
            config.num_base_registers, config.base_register_bits
        )
        self.cache = Cache(config.cache_lines, config.cache_ways)
        self.storage = Storage(config.storage_words)
        self.now = 0
        self.fault_flags = 0
        self._storage_busy_until = 0
        self._refs = [_TaskRef() for _ in range(NUM_TASKS)]
        self._fast_in_flight: List[FastTransfer] = []
        #: Called with the latched bits whenever a fault latches; the
        #: processor installs the fault-task wakeup here.
        self.on_fault: Optional[callable] = None
        # Fault injection (DESIGN.md section 5.2): None by default, so
        # the timed paths below pay only an `is not None` test.
        if config.fault_injection is not None:
            self.injector: Optional[FaultInjector] = FaultInjector(
                InjectionPlan.from_config(config.fault_injection), self.counters
            )
            self.injector.bind(
                clock=lambda: self.now,
                on_uncorrectable=lambda: self._fault(FAULT_STORAGE),
            )
            self.storage.ecc = self.injector.ecc
        else:
            self.injector = None

    # --- cycle advance -------------------------------------------------------

    def tick(self) -> None:
        """Advance one machine cycle; complete due fast-I/O deliveries."""
        self.now += 1
        if self._fast_in_flight:
            due = [t for t in self._fast_in_flight if t.complete_at <= self.now]
            if due:
                self._fast_in_flight = [
                    t for t in self._fast_in_flight if t.complete_at > self.now
                ]
                for transfer in due:
                    transfer.deliver()

    # --- fault latch -----------------------------------------------------------

    def _fault(self, bits: int) -> None:
        self.fault_flags |= bits
        self.counters.faults_latched += 1
        if self.on_fault is not None:
            self.on_fault(bits)

    def read_faults(self, clear: bool) -> int:
        value = self.fault_flags
        if clear:
            self.fault_flags = 0
        return value

    # --- storage occupancy -------------------------------------------------------

    def _claim_storage(self, cycles: int = 1) -> int:
        """Occupy storage for *cycles* storage-cycles; returns start time."""
        start = max(self.now, self._storage_busy_until)
        self._storage_busy_until = start + cycles * self.config.storage_cycle
        return start

    @property
    def storage_busy(self) -> bool:
        return self._storage_busy_until > self.now

    # --- processor references (slow path, through the cache) -----------------

    def task_busy(self, task: int) -> bool:
        """True while the task's latest reference is still in the pipe."""
        return self._refs[task].busy_until > self.now

    def start_fetch(self, task: int, membase: int, displacement: int) -> bool:
        """Begin a Fetch; always proceeds (the cache takes a ref per cycle).

        MEMDATA rebinds to this, the most recent, fetch; data from a
        still-outstanding earlier fetch that was never used is simply
        lost, as on the real machine -- "MEMDATA has the value of the
        memory word most recently fetched by the current task".
        """
        ref = self._refs[task]
        va = self.translator.virtual_address(membase, displacement)
        injected = None
        if self.injector is not None:
            injected = self.injector.memory_fault_due(write=False, address=va)
            if injected is FaultKind.BOUNDS:
                self.counters.memory_fetches += 1
                self._fault(FAULT_BOUNDS)
                self._complete_fault(ref)
                return True
            if injected is not None:
                self.translator.inject_next = injected
        ra = self.translator.translate(va, write=False)
        self.counters.memory_fetches += 1
        if ra is None:
            self._fault(FAULT_MAP)
            self._complete_fault(ref)
            return True
        if not self.storage.in_range(ra):
            self._fault(FAULT_BOUNDS)
            self._complete_fault(ref)
            return True
        line = self.cache.lookup(ra)
        if line is not None:
            self.counters.cache_hits += 1
            value = line.words[ra % MUNCH_WORDS]
            ready = self.now + self.config.cache_hit_cycles
        else:
            self.counters.cache_misses += 1
            start = self._fill_line(ra)
            value = self.cache.read_word(ra)
            ready = start + self.config.miss_penalty
        ref.md_value = value
        ref.md_ready_at = ready
        ref.md_valid = True
        ref.busy_until = ready
        return True

    def start_store(self, task: int, membase: int, displacement: int, data: int) -> bool:
        """Begin a Store of *data*; stores never hold (write buffering)."""
        ref = self._refs[task]
        va = self.translator.virtual_address(membase, displacement)
        injected = None
        if self.injector is not None:
            injected = self.injector.memory_fault_due(write=True, address=va)
            if injected is FaultKind.BOUNDS:
                self.counters.memory_stores += 1
                self._fault(FAULT_BOUNDS)
                self._complete_fault(ref)
                return True
            if injected is not None:
                self.translator.inject_next = injected
        ra = self.translator.translate(va, write=True)
        self.counters.memory_stores += 1
        if ra is None:
            if injected is FaultKind.MAP:
                bits = FAULT_MAP
            elif injected is FaultKind.WRITE_PROTECT:
                bits = FAULT_WRITE_PROTECT
            else:
                entry = self.translator.entry_for(va)
                bits = FAULT_WRITE_PROTECT if entry and entry.valid else FAULT_MAP
            self._fault(bits)
            self._complete_fault(ref)
            return True
        if not self.storage.in_range(ra):
            self._fault(FAULT_BOUNDS)
            self._complete_fault(ref)
            return True
        line = self.cache.lookup(ra)
        if line is not None:
            self.counters.cache_hits += 1
            line.words[ra % MUNCH_WORDS] = word(data)
            line.dirty = True
            ref.busy_until = self.now + 1
        else:
            self.counters.cache_misses += 1
            start = self._fill_line(ra)
            self.cache.write_word(ra, data)
            ref.busy_until = start + self.config.miss_penalty
        return True

    def _fill_line(self, ra: int) -> int:
        """Fetch the munch holding *ra* from storage into the cache.

        Returns the cycle at which the storage reference started.  A
        dirty victim costs one more storage cycle for its write-back.
        """
        start = self._claim_storage()
        self.counters.storage_reads += 1
        writeback = self.cache.fill(ra, self.storage.read_munch(ra))
        if writeback is not None:
            victim_address, victim_words = writeback
            self.storage.write_munch(victim_address, victim_words)
            self.counters.storage_writes += 1
            self._claim_storage()
        return start

    def _complete_fault(self, ref: _TaskRef) -> None:
        """A faulting reference completes immediately with MD = 0."""
        ref.md_value = 0
        ref.md_ready_at = self.now
        ref.md_valid = True
        ref.busy_until = self.now

    # --- MEMDATA ----------------------------------------------------------------

    def md_ready(self, task: int) -> bool:
        """Whether using MEMDATA would proceed without Hold."""
        ref = self._refs[task]
        return ref.md_valid and ref.md_ready_at <= self.now

    def read_md(self, task: int) -> int:
        """The task's MEMDATA.  Callers must have checked :meth:`md_ready`."""
        return self._refs[task].md_value

    def ref_state(self, task: int) -> tuple:
        """(md_valid, md_ready_at, storage_busy_until) for diagnostics.

        Thin alias over the snapshot protocol: the same facts, drawn
        from :meth:`_TaskRef.state_dict`, in the historical tuple shape.
        """
        ref = self._refs[task].state_dict()
        return ref["md_valid"], ref["md_ready_at"], self._storage_busy_until

    # --- snapshot protocol (DESIGN.md section 5.4) -------------------------

    def state_dict(self, port_index=None) -> dict:
        """Pipeline timing state plus the translator/cache/storage images.

        In-flight fast transfers hold references to device ports, which
        plain data cannot carry; *port_index* maps a port object to its
        machine device index (:meth:`Processor.snapshot` supplies it).
        The counters are owned by the processor and the injector is
        captured separately, so neither appears here; ``on_fault`` is a
        hook, not state.
        """
        if self._fast_in_flight and port_index is None:
            from ..errors import StateError
            raise StateError(
                "fast I/O transfers are in flight; snapshotting them "
                "requires a port_index mapping"
            )
        return {
            "now": self.now,
            "fault_flags": self.fault_flags,
            "storage_busy_until": self._storage_busy_until,
            "refs": [ref.state_dict() for ref in self._refs],
            "fast_in_flight": [
                t.state_dict(port_index) for t in self._fast_in_flight
            ],
            "translator": self.translator.state_dict(),
            "cache": self.cache.state_dict(),
            "storage": self.storage.state_dict(),
        }

    def load_state(self, state: dict, port_of=None) -> None:
        if state["fast_in_flight"] and port_of is None:
            from ..errors import StateError
            raise StateError(
                "snapshot carries in-flight fast I/O transfers; restoring "
                "them requires a port_of mapping"
            )
        self.now = state["now"]
        self.fault_flags = state["fault_flags"]
        self._storage_busy_until = state["storage_busy_until"]
        for ref, ref_state in zip(self._refs, state["refs"]):
            ref.load_state(ref_state)
        self._fast_in_flight = [
            FastTransfer.from_state(t, port_of) for t in state["fast_in_flight"]
        ]
        self.translator.load_state(state["translator"])
        self.cache.load_state(state["cache"])
        self.storage.load_state(state["storage"])

    # --- fast I/O (section 5.8) ---------------------------------------------------

    def start_fastio_fetch(
        self, task: int, membase: int, displacement: int, port: FastPort
    ) -> bool:
        """IOFetch: munch from storage to the device, bypassing the cache.

        Returns False (Hold) while storage is busy; the delivery to the
        device completes one storage cycle after it starts.
        """
        if port is None:
            raise DeviceError("IOFetch requires a fast-I/O port")
        if self.storage_busy:
            return False
        va = self.translator.virtual_address(membase, displacement)
        ra = self.translator.translate(va, write=False)
        if ra is None or not self.storage.in_range(ra):
            self._fault(FAULT_MAP if ra is None else FAULT_BOUNDS)
            return True
        # Consistency: a dirty cached copy must reach storage first.
        flushed = self.cache.flush_munch(ra)
        if flushed is not None:
            self.storage.write_munch(ra, flushed)
            self.counters.storage_writes += 1
            self._claim_storage()
        start = self._claim_storage()
        self.counters.storage_reads += 1
        self.counters.fastio_munches += 1
        words = self.storage.read_munch(ra)
        self._fast_in_flight.append(
            FastTransfer(
                complete_at=start + self.config.storage_cycle,
                port=port,
                address=Storage.munch_base(ra),
                words=words,
            )
        )
        return True

    def start_fastio_store(
        self, task: int, membase: int, displacement: int, port: FastPort
    ) -> bool:
        """IOStore: munch from the device to storage, invalidating the cache."""
        if port is None:
            raise DeviceError("IOStore requires a fast-I/O port")
        if self.storage_busy:
            return False
        va = self.translator.virtual_address(membase, displacement)
        ra = self.translator.translate(va, write=True)
        if ra is None or not self.storage.in_range(ra):
            self._fault(FAULT_MAP if ra is None else FAULT_BOUNDS)
            return True
        words = port.fast_supply(Storage.munch_base(ra))
        if len(words) != MUNCH_WORDS:
            raise DeviceError(f"fast port supplied {len(words)} words, expected {MUNCH_WORDS}")
        self._claim_storage()
        self.storage.write_munch(ra, [word(w) for w in words])
        self.counters.storage_writes += 1
        self.counters.fastio_munches += 1
        self.cache.invalidate_munch(ra)
        return True

    # --- setup/debug helpers -------------------------------------------------------

    def identity_map(self, pages: Optional[int] = None) -> None:
        """Map storage straight through (the usual test/emulator setup)."""
        if pages is None:
            pages = self.config.storage_words >> PAGE_SHIFT
        self.translator.identity_map(pages)

    def debug_read(self, va: int) -> int:
        """Untimed coherent read: cache copy if present, else storage."""
        ra = self.translator.translate(va, write=False)
        if ra is None or not self.storage.in_range(ra):
            raise DeviceError(f"debug_read: unmapped VA {va:#x}")
        if self.cache.contains(ra):
            return self.cache.read_word(ra)
        return self.storage.read_word(ra)

    def debug_write(self, va: int, value: int) -> None:
        """Untimed coherent write: updates the cache copy if present."""
        ra = self.translator.translate(va, write=True)
        if ra is None or not self.storage.in_range(ra):
            raise DeviceError(f"debug_write: unmapped VA {va:#x}")
        if self.cache.contains(ra):
            self.cache.write_word(ra, value)
        else:
            self.storage.write_word(ra, value)
