"""The fast I/O system (section 5.8).

"There is also a more direct memory access I/O subsystem, the fast I/O
system; it allows data to move directly between storage and I/O devices,
in blocks of 16 words, without polluting the cache."

A device participates by implementing :class:`FastPort`; the memory
pipeline moves whole munches between storage and the port, one munch per
storage cycle, which is what yields the 530 Mbit/s figure (16 words x
16 bits every 8 x 60 ns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Protocol


class FastPort(Protocol):
    """What a device exposes to the fast I/O system."""

    def fast_deliver(self, address: int, words: List[int]) -> None:
        """Accept a munch read from storage (IOFetch completion)."""

    def fast_supply(self, address: int) -> List[int]:
        """Produce the 16 words for a munch write to storage (IOStore)."""


@dataclass
class FastTransfer:
    """One in-flight IOFetch: delivery scheduled for a future cycle."""

    complete_at: int
    port: FastPort
    address: int
    words: List[int]

    def deliver(self) -> None:
        self.port.fast_deliver(self.address, self.words)

    # --- snapshot protocol (DESIGN.md section 5.4) -------------------------

    def state_dict(self, port_index: Callable[[FastPort], int]) -> dict:
        """Plain data; the port is named by its machine device index."""
        return {
            "complete_at": self.complete_at,
            "port": port_index(self.port),
            "address": self.address,
            "words": list(self.words),
        }

    @classmethod
    def from_state(
        cls, state: dict, port_of: Callable[[int], FastPort]
    ) -> "FastTransfer":
        return cls(
            complete_at=state["complete_at"],
            port=port_of(state["port"]),
            address=state["address"],
            words=list(state["words"]),
        )
