"""Exception hierarchy for the Dorado simulator.

Every error raised by the package derives from :class:`DoradoError`, so
callers can catch the whole family with one clause.  Microcode-visible
hardware conditions (stack overflow, page faults) are *not* Python
exceptions at run time -- the hardware latches them and microcode tests
them -- but building or configuring the machine incorrectly raises one
of these.
"""

from __future__ import annotations


class DoradoError(Exception):
    """Base class for all errors raised by the simulator."""


class EncodingError(DoradoError):
    """A microinstruction field was given a value that does not fit."""


class AssemblyError(DoradoError):
    """The microassembler rejected a program (bad label, FF conflict, ...)."""


class PlacementError(AssemblyError):
    """The instruction placer could not satisfy the page constraints."""


class ConfigError(DoradoError):
    """A :class:`~repro.config.MachineConfig` value is out of range."""


class MicrocodeCrash(DoradoError):
    """Microcode executed an explicit breakpoint/crash function.

    The hardware analogue is the console microcomputer halting the
    machine; simulations raise this so tests fail loudly instead of
    spinning.
    """


class HoldTimeout(MicrocodeCrash):
    """The Hold watchdog: a task was held past the configured limit.

    The real machine would simply livelock if a reference never
    completed; the simulator raises instead, carrying enough of the
    pipeline state (task, microaddress, cycle, MEMDATA readiness, and
    the last attributed hold cause) to diagnose which reference never
    became ready.
    """

    def __init__(
        self,
        task: int,
        pc: int,
        cycle: int,
        holds: int,
        md_valid: bool = False,
        md_ready_at: int = 0,
        storage_busy_until: int = 0,
        hold_cause: str | None = None,
    ) -> None:
        self.task = task
        self.pc = pc
        self.cycle = cycle
        self.holds = holds
        self.md_valid = md_valid
        self.md_ready_at = md_ready_at
        self.storage_busy_until = storage_busy_until
        self.hold_cause = hold_cause
        md = (
            f"MEMDATA ready at cycle {md_ready_at}" if md_valid
            else "no reference ever completed for this task"
        )
        cause = f"; last hold cause {hold_cause}" if hold_cause else ""
        super().__init__(
            f"task {task} held {holds} consecutive cycles at {pc:#o} "
            f"(cycle {cycle}; {md}; storage busy until "
            f"{storage_busy_until}{cause})"
        )


class StateError(DoradoError):
    """A machine snapshot cannot be captured, restored, or decoded.

    Raised for version/config mismatches between a
    :class:`~repro.state.MachineState` and the machine it is applied
    to, for malformed serialized state, and for snapshots that cannot
    be taken (e.g. in-flight fast I/O with no device mapping).
    """


class TransientFault(DoradoError):
    """A failure the recovery supervisor believes rollback can cure.

    Base of the recoverable half of the failure taxonomy (DESIGN.md
    section 5.5).  Carries whatever machine context was available at
    the detection point so post-mortems do not need a live machine.
    """

    def __init__(
        self,
        message: str,
        *,
        task: int | None = None,
        pc: int | None = None,
        cycle: int | None = None,
        hold_cause: str | None = None,
    ) -> None:
        self.task = task
        self.pc = pc
        self.cycle = cycle
        self.hold_cause = hold_cause
        where = []
        if task is not None:
            where.append(f"task {task}")
        if pc is not None:
            where.append(f"upc {pc:#o}")
        if cycle is not None:
            where.append(f"cycle {cycle}")
        if hold_cause is not None:
            where.append(f"hold cause {hold_cause}")
        suffix = f" ({', '.join(where)})" if where else ""
        super().__init__(message + suffix)


class CorruptionDetected(TransientFault):
    """The machine-check sanitizer found a violated invariant.

    ``failures`` is a tuple of human-readable descriptions, one per
    tripped check (a single sweep can trip several).
    """

    def __init__(self, failures, **context) -> None:
        self.failures = tuple(str(f) for f in failures)
        count = len(self.failures)
        head = self.failures[0] if self.failures else "unspecified"
        more = f" (+{count - 1} more)" if count > 1 else ""
        super().__init__(f"machine check failed: {head}{more}", **context)


class DivergenceDetected(TransientFault):
    """Plan-cache and interpreter execution disagreed.

    ``diffs`` holds the :func:`~repro.state.diff_states` paths at the
    first divergent cycle -- evidence that a compiled plan, not the
    architectural state, is the suspect.
    """

    def __init__(self, cycle, diffs, **context) -> None:
        self.diffs = tuple(diffs)
        context.setdefault("cycle", cycle)
        head = self.diffs[0] if self.diffs else "state mismatch"
        super().__init__(
            f"plan/interpreter divergence at cycle {cycle}: {head}", **context
        )


class UnrecoverableFault(DoradoError):
    """The recovery supervisor exhausted its retry budget.

    Chains the final failure as ``cause`` and records how many
    rollback-and-replay attempts were spent, plus the machine context
    of the last attempt.
    """

    def __init__(
        self,
        cause: BaseException,
        attempts: int,
        *,
        task: int | None = None,
        pc: int | None = None,
        cycle: int | None = None,
    ) -> None:
        self.cause = cause
        self.attempts = attempts
        self.task = task
        self.pc = pc
        self.cycle = cycle
        where = []
        if task is not None:
            where.append(f"task {task}")
        if pc is not None:
            where.append(f"upc {pc:#o}")
        if cycle is not None:
            where.append(f"cycle {cycle}")
        suffix = f" ({', '.join(where)})" if where else ""
        super().__init__(
            f"recovery failed after {attempts} rollback attempts: "
            f"{cause}{suffix}"
        )


class DeviceError(DoradoError):
    """An I/O device model was used inconsistently."""


class ServiceError(DoradoError):
    """A session/fleet request the simulation service cannot honour.

    Raised by :mod:`repro.service` for protocol-level mistakes -- an
    unknown workload or session name, a malformed suspend envelope, a
    duplicate open -- as opposed to failures *of* the simulated run,
    which surface as the usual :class:`EmulatorError` /
    :class:`UnrecoverableFault` family and are recorded on the session.
    """


class WorkerCrashed(ServiceError):
    """A fleet worker process died (or its pipe closed) mid-request.

    Carries the worker slot, the operation that was in flight, and the
    session name(s) that operation addressed, so the fleet's recovery
    path (and post-mortems) know exactly what was lost without a live
    process to ask.
    """

    def __init__(
        self,
        message: str,
        *,
        worker: int | None = None,
        op: str | None = None,
        sessions: tuple[str, ...] | list[str] = (),
    ) -> None:
        self.worker = worker
        self.op = op
        self.sessions = tuple(sessions)
        where = []
        if worker is not None:
            where.append(f"worker {worker}")
        if op is not None:
            where.append(f"op {op!r}")
        if self.sessions:
            where.append(f"sessions {', '.join(self.sessions)}")
        suffix = f" ({'; '.join(where)})" if where else ""
        super().__init__(message + suffix)


class CallTimeout(ServiceError):
    """A fleet request got no reply in time (lost or stalled)."""


class GarbledReply(ServiceError):
    """A fleet worker's reply arrived corrupted or unparseable."""


class SpoolCorruption(ServiceError):
    """A spool checkpoint file failed its integrity checks.

    Raised by :func:`repro.service.spool.spool_decode` for truncated
    files, checksum mismatches, and unsupported envelope versions; the
    fleet catches it and falls back to the previous spool generation.
    """


class OverloadError(ServiceError):
    """The fleet exhausted every recovery avenue for a request.

    The front end turns this into a structured shed-load reply carrying
    ``retry_after`` (seconds) instead of tearing down the connection.
    """

    def __init__(self, message: str, *, retry_after: float = 30.0) -> None:
        self.retry_after = retry_after
        super().__init__(f"{message} (retry after {retry_after:g}s)")


class EmulatorError(DoradoError):
    """A byte-code program or emulator image is malformed."""
