"""Exception hierarchy for the Dorado simulator.

Every error raised by the package derives from :class:`DoradoError`, so
callers can catch the whole family with one clause.  Microcode-visible
hardware conditions (stack overflow, page faults) are *not* Python
exceptions at run time -- the hardware latches them and microcode tests
them -- but building or configuring the machine incorrectly raises one
of these.
"""

from __future__ import annotations


class DoradoError(Exception):
    """Base class for all errors raised by the simulator."""


class EncodingError(DoradoError):
    """A microinstruction field was given a value that does not fit."""


class AssemblyError(DoradoError):
    """The microassembler rejected a program (bad label, FF conflict, ...)."""


class PlacementError(AssemblyError):
    """The instruction placer could not satisfy the page constraints."""


class ConfigError(DoradoError):
    """A :class:`~repro.config.MachineConfig` value is out of range."""


class MicrocodeCrash(DoradoError):
    """Microcode executed an explicit breakpoint/crash function.

    The hardware analogue is the console microcomputer halting the
    machine; simulations raise this so tests fail loudly instead of
    spinning.
    """


class HoldTimeout(MicrocodeCrash):
    """The Hold watchdog: a task was held past the configured limit.

    The real machine would simply livelock if a reference never
    completed; the simulator raises instead, carrying enough of the
    pipeline state (task, microaddress, cycle, MEMDATA readiness) to
    diagnose which reference never became ready.
    """

    def __init__(
        self,
        task: int,
        pc: int,
        cycle: int,
        holds: int,
        md_valid: bool = False,
        md_ready_at: int = 0,
        storage_busy_until: int = 0,
    ) -> None:
        self.task = task
        self.pc = pc
        self.cycle = cycle
        self.holds = holds
        self.md_valid = md_valid
        self.md_ready_at = md_ready_at
        self.storage_busy_until = storage_busy_until
        md = (
            f"MEMDATA ready at cycle {md_ready_at}" if md_valid
            else "no reference ever completed for this task"
        )
        super().__init__(
            f"task {task} held {holds} consecutive cycles at {pc:#o} "
            f"(cycle {cycle}; {md}; storage busy until {storage_busy_until})"
        )


class StateError(DoradoError):
    """A machine snapshot cannot be captured, restored, or decoded.

    Raised for version/config mismatches between a
    :class:`~repro.state.MachineState` and the machine it is applied
    to, for malformed serialized state, and for snapshots that cannot
    be taken (e.g. in-flight fast I/O with no device mapping).
    """


class DeviceError(DoradoError):
    """An I/O device model was used inconsistently."""


class EmulatorError(DoradoError):
    """A byte-code program or emulator image is malformed."""
